// Package metrics is a minimal process-wide registry of named counters,
// timers, and log-scale histograms for the analysis engine and the
// experiment harness.
//
// The instruments are cheap enough to leave enabled unconditionally
// (atomic adds on the hot paths, one mutex-guarded map lookup at
// package-variable initialization), deterministic counters plus
// wall-clock timers, and carry no dependencies, so every layer — the
// scheduling fixed point, the memoization caches, the sweep workers —
// can record what it did without threading a context through the whole
// call tree. CLI frontends dump the registry after a run (behind a
// default-off flag, keeping golden outputs stable); tests reset it.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards is the number of independent accumulation slots per
// counter (power of two). Hot counters are incremented once per chain
// pair or per simulated run by every sweep worker concurrently; a single
// atomic word turns into a cross-core cache-line ping-pong that showed
// up at ~10% of a parallel Fig. 6 sweep. Each shard is padded to its own
// cache line, and writers pick a shard from their stack address, so
// workers on different goroutines rarely contend.
const counterShards = 8

type counterShard struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line so shards don't false-share
}

// shardIndex spreads goroutines across shards. Goroutine stacks are
// distinct allocations of at least a kilobyte, so bits above the low
// page of a stack address distinguish goroutines cheaply. Any index is
// correct — this only steers contention.
func shardIndex() int {
	var x byte
	return int(uintptr(unsafe.Pointer(&x)) >> 10 & (counterShards - 1))
}

// Counter is a monotonically increasing (well, Add accepts any delta)
// sharded atomic counter.
type Counter struct {
	shards [counterShards]counterShard
}

// Inc adds one.
func (c *Counter) Inc() { c.shards[shardIndex()].v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.shards[shardIndex()].v.Add(n) }

// Load returns the current value: the sum over shards. Concurrent adds
// may or may not be included, as with a single atomic word.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// reset zeroes all shards.
func (c *Counter) reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// Timer accumulates durations: total nanoseconds and observation count.
//
// The (total, count) pair is kept coherent with a seqlock: writers
// serialize on the sequence word (one CAS on the uncontended path) and
// bracket their two adds with odd/even transitions; Snapshot retries
// until it reads an even, unchanged sequence. Total and Count read one
// word each and never tear individually, but reading them separately
// can still observe an update between the two calls — use Snapshot for
// a coherent pair (Registry.Snapshot does).
type Timer struct {
	seq   atomic.Uint64
	ns    atomic.Int64
	count atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	for {
		s := t.seq.Load()
		if s&1 == 0 && t.seq.CompareAndSwap(s, s+1) {
			break
		}
	}
	t.ns.Add(int64(d))
	t.count.Add(1)
	t.seq.Add(1)
}

// Start begins a measurement; the returned func stops and records it.
// Usage: defer timer.Start()().
func (t *Timer) Start() func() {
	begin := time.Now()
	return func() { t.Observe(time.Since(begin)) }
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Snapshot returns the accumulated total and count as one coherent
// pair: the returned values come from the same point in the
// observation sequence, even under concurrent Observe calls. After a
// bounded number of retries under sustained writes it falls back to a
// possibly-torn read (in practice unreachable: the write side holds
// the sequence odd only for two atomic adds).
func (t *Timer) Snapshot() (total time.Duration, count int64) {
	for attempt := 0; attempt < 128; attempt++ {
		s := t.seq.Load()
		if s&1 != 0 {
			continue
		}
		ns, c := t.ns.Load(), t.count.Load()
		if t.seq.Load() == s {
			return time.Duration(ns), c
		}
	}
	return time.Duration(t.ns.Load()), t.count.Load()
}

// Registry is a named collection of instruments. The zero value is not
// usable; use NewRegistry or the package-level Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. The
// returned pointer is stable; callers should look it up once (package
// variable) and increment through the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named log-scale histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument (the instruments stay registered, so
// pointers held by callers remain valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, t := range r.timers {
		t.ns.Store(0)
		t.count.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Entry is one instrument value in a snapshot.
type Entry struct {
	Name  string
	Value int64
}

// Snapshot returns all instrument values sorted by name. Timers expand
// to two entries, "<name>.ns" (total nanoseconds) and "<name>.count",
// read as one coherent pair (Timer.Snapshot). Histograms expand to
// five: ".ns", ".count", and the nanosecond quantile estimates ".p50",
// ".p90", ".p99". A histogram's entries come from one bucket snapshot,
// but across different instruments the snapshot is not a consistent
// cut — observations racing with Snapshot may appear in one instrument
// and not another.
func (r *Registry) Snapshot() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.counters)+2*len(r.timers)+5*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Entry{name, c.Load()})
	}
	for name, t := range r.timers {
		total, count := t.Snapshot()
		out = append(out,
			Entry{name + ".count", count},
			Entry{name + ".ns", int64(total)},
		)
	}
	for name, h := range r.hists {
		counts := h.Counts()
		var total int64
		for _, c := range counts {
			total += c
		}
		out = append(out,
			Entry{name + ".count", total},
			Entry{name + ".ns", int64(h.Total())},
			Entry{name + ".p50", int64(quantileOf(counts, total, 0.50))},
			Entry{name + ".p90", int64(quantileOf(counts, total, 0.90))},
			Entry{name + ".p99", int64(quantileOf(counts, total, 0.99))},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// durationEntry reports whether a snapshot entry holds nanoseconds and
// should render as a duration, returning the display name.
func durationEntry(name string) (string, bool) {
	if n := len(name); n > 3 && name[n-3:] == ".ns" {
		return name[:n-3] + ".total", true
	}
	for _, suf := range [...]string{".p50", ".p90", ".p99"} {
		if n := len(name); n > 4 && name[n-4:] == suf {
			return name, true
		}
	}
	return name, false
}

// Fprint writes the snapshot as aligned "name value" lines. Timer and
// histogram totals and quantiles are rendered as durations for
// readability.
func (r *Registry) Fprint(w io.Writer) error {
	for _, e := range r.Snapshot() {
		var err error
		if name, isDur := durationEntry(e.Name); isDur {
			_, err = fmt.Fprintf(w, "%-44s %v\n", name, time.Duration(e.Value))
		} else {
			_, err = fmt.Fprintf(w, "%-44s %d\n", e.Name, e.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CounterValue, TimerValue, and HistogramValue are the typed entries of
// an Export.
type (
	CounterValue struct {
		Name  string
		Value int64
	}
	TimerValue struct {
		Name    string
		TotalNS int64
		Count   int64
	}
	HistogramValue struct {
		Name  string
		SumNS int64
		Count int64
		// Buckets holds the per-bucket counts (index = significant bits
		// of the nanosecond value; see Histogram).
		Buckets [HistBuckets]int64
	}
)

// Export is a typed snapshot of a registry for exposition formats
// (Prometheus text, run manifests) that need more structure than the
// flat Snapshot entries. Each slice is sorted by name.
type Export struct {
	Counters   []CounterValue
	Timers     []TimerValue
	Histograms []HistogramValue
}

// Export returns a typed snapshot of every instrument.
func (r *Registry) Export() Export {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ex Export
	for name, c := range r.counters {
		ex.Counters = append(ex.Counters, CounterValue{name, c.Load()})
	}
	for name, t := range r.timers {
		total, count := t.Snapshot()
		ex.Timers = append(ex.Timers, TimerValue{name, int64(total), count})
	}
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, SumNS: int64(h.Total()), Buckets: h.Counts()}
		for _, c := range hv.Buckets {
			hv.Count += c
		}
		ex.Histograms = append(ex.Histograms, hv)
	}
	sort.Slice(ex.Counters, func(i, j int) bool { return ex.Counters[i].Name < ex.Counters[j].Name })
	sort.Slice(ex.Timers, func(i, j int) bool { return ex.Timers[i].Name < ex.Timers[j].Name })
	sort.Slice(ex.Histograms, func(i, j int) bool { return ex.Histograms[i].Name < ex.Histograms[j].Name })
	return ex
}

// Default is the process-wide registry used by the package-level
// helpers; the analysis packages register their instruments here.
var Default = NewRegistry()

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// T returns a timer from the Default registry.
func T(name string) *Timer { return Default.Timer(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// Reset zeroes the Default registry (test helper).
func Reset() { Default.Reset() }

// Fprint dumps the Default registry.
func Fprint(w io.Writer) error { return Default.Fprint(w) }
