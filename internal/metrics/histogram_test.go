package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket mapping at the powers of two:
// bucket i holds [2^(i-1), 2^i), bucket 0 holds ≤ 0.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1<<62 - 1, 62}, {1 << 62, 63}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	// The mapping and the declared bounds must agree: every value is
	// ≤ its bucket's upper bound and > the previous bucket's.
	for _, ns := range []int64{1, 2, 3, 1000, 123456789, math.MaxInt64} {
		b := bucketOf(ns)
		if ns > BucketUpper(b) {
			t.Errorf("value %d above BucketUpper(%d) = %d", ns, b, BucketUpper(b))
		}
		if b > 0 && ns <= BucketUpper(b-1) {
			t.Errorf("value %d not above BucketUpper(%d) = %d", ns, b-1, BucketUpper(b-1))
		}
	}
}

func TestHistogramTotals(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	durations := []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond, time.Second}
	var want time.Duration
	for _, d := range durations {
		h.Observe(d)
		want += d
	}
	if h.Count() != int64(len(durations)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(durations))
	}
	if h.Total() != want {
		t.Errorf("Total = %v, want %v", h.Total(), want)
	}
}

// TestQuantiles checks rank selection across buckets and interpolation
// within one: quantiles of a known distribution land in the right
// bucket, and the declared <2x resolution holds.
func TestQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (~1µs) and 10 slow ones (~1s).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond) // bucket 10: [512, 1023]
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second) // bucket 30
	}
	p50 := h.Quantile(0.50)
	if lo, hi := 512*time.Nanosecond, 1023*time.Nanosecond; p50 < lo || p50 > hi {
		t.Errorf("p50 = %v, want within [%v, %v]", p50, lo, hi)
	}
	p99 := h.Quantile(0.99)
	if lo, hi := 512*time.Millisecond, 1024*time.Millisecond; p99 < lo || p99 > hi {
		t.Errorf("p99 = %v, want within [%v, %v]", p99, lo, hi)
	}
	if p90 := h.Quantile(0.90); p90 > 1023*time.Nanosecond {
		// rank ⌈0.9·100⌉ = 90 is the last fast observation.
		t.Errorf("p90 = %v, want in the fast bucket", p90)
	}
	// Degenerate quantile arguments clamp instead of panicking.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

// TestQuantileInterpolation pins the within-bucket linear estimate:
// with all mass in one bucket, quantiles sweep the bucket's range
// monotonically.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(700 * time.Nanosecond) // bucket 10: [512, 1023]
	}
	last := time.Duration(0)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 1.0} {
		v := h.Quantile(q)
		if v < 512 || v > 1023 {
			t.Errorf("Quantile(%v) = %v outside bucket [512ns, 1023ns]", q, v)
		}
		if v < last {
			t.Errorf("Quantile(%v) = %v < previous %v (not monotone)", q, v, last)
		}
		last = v
	}
}

func TestHistogramRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage.x")
	if h != r.Histogram("stage.x") {
		t.Error("Histogram not idempotent")
	}
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	entries := map[string]int64{}
	for _, e := range r.Snapshot() {
		entries[e.Name] = e.Value
	}
	if entries["stage.x.count"] != 2 {
		t.Errorf("snapshot count = %d, want 2", entries["stage.x.count"])
	}
	if entries["stage.x.ns"] != int64(4*time.Millisecond) {
		t.Errorf("snapshot ns = %d", entries["stage.x.ns"])
	}
	for _, q := range []string{"stage.x.p50", "stage.x.p90", "stage.x.p99"} {
		if _, ok := entries[q]; !ok {
			t.Errorf("snapshot missing %s", q)
		}
	}
	r.Reset()
	if h.Count() != 0 || h.Total() != 0 {
		t.Error("Reset did not zero the histogram")
	}
}

func TestExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(7)
	r.Counter("a.counter").Inc()
	r.Timer("t").Observe(5 * time.Millisecond)
	r.Histogram("h").Observe(2 * time.Microsecond)
	ex := r.Export()
	if len(ex.Counters) != 2 || ex.Counters[0].Name != "a.counter" || ex.Counters[1].Value != 7 {
		t.Errorf("counters: %+v", ex.Counters)
	}
	if len(ex.Timers) != 1 || ex.Timers[0].TotalNS != int64(5*time.Millisecond) || ex.Timers[0].Count != 1 {
		t.Errorf("timers: %+v", ex.Timers)
	}
	if len(ex.Histograms) != 1 || ex.Histograms[0].Count != 1 || ex.Histograms[0].SumNS != 2000 {
		t.Errorf("histograms: %+v", ex.Histograms)
	}
	if b := ex.Histograms[0].Buckets[bucketOf(2000)]; b != 1 {
		t.Errorf("bucket count = %d", b)
	}
}

// TestHistogramConcurrent checks the lock-free observation path under
// the race detector and that no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
}

// TestTimerSnapshotCoherent hammers a timer with fixed-size
// observations while snapshotting: every coherent (total, count) pair
// must satisfy total == count·d exactly. This is the seqlock contract;
// the pre-seqlock Timer fails this test readily.
func TestTimerSnapshotCoherent(t *testing.T) {
	var tm Timer
	const d = 3 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tm.Observe(d)
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		total, count := tm.Snapshot()
		if total != time.Duration(count)*d {
			t.Errorf("torn snapshot: total %v, count %d (want total = count × %v)", total, count, d)
			break
		}
	}
	close(stop)
	wg.Wait()
}
