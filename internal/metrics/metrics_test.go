package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("Counter not idempotent")
	}
	tm := r.Timer("a.time")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 5*time.Millisecond {
		t.Errorf("timer = %d obs / %v, want 2 / 5ms", tm.Count(), tm.Total())
	}
	stop := tm.Start()
	stop()
	if tm.Count() != 3 {
		t.Errorf("Start/stop did not record: count = %d", tm.Count())
	}
}

func TestSnapshotSortedAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Timer("m").Observe(time.Second)
	snap := r.Snapshot()
	var names []string
	for _, e := range snap {
		names = append(names, e.Name)
	}
	want := []string{"a", "m.count", "m.ns", "z"}
	if len(names) != len(want) {
		t.Fatalf("snapshot names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot names = %v, want %v", names, want)
		}
	}
	r.Reset()
	for _, e := range r.Snapshot() {
		if e.Value != 0 {
			t.Errorf("after Reset, %s = %d", e.Name, e.Value)
		}
	}
}

func TestFprint(t *testing.T) {
	r := NewRegistry()
	r.Counter("graphs.generated").Add(7)
	r.Timer("sweep.point").Observe(1500 * time.Millisecond)
	var sb strings.Builder
	if err := r.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graphs.generated", "7", "sweep.point.count", "sweep.point.total", "1.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Timer("shared.time").Observe(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Timer("shared.time").Count(); got != 8000 {
		t.Errorf("concurrent timer count = %d, want 8000", got)
	}
}
