package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of fixed log-scale buckets of a Histogram.
// Bucket i (i ≥ 1) holds durations whose nanosecond value has i
// significant bits, i.e. the half-open range [2^(i-1), 2^i); bucket 0
// holds zero and negative observations. 64 buckets cover every int64
// duration (~292 years), so there is no overflow bucket and no
// configuration — every histogram in the process is comparable.
const HistBuckets = 64

// Histogram records a duration distribution in fixed power-of-two
// buckets: two atomic adds per observation, no locks, no allocation.
// Factor-of-two resolution is coarse but exactly right for wall-clock
// stage times, whose interesting differences are orders of magnitude;
// quantile estimates interpolate within a bucket and are accurate to
// <2x, which is what the sweep dashboards need (is analysis µs or ms?).
//
// Snapshots taken during concurrent Observe calls may miss in-flight
// observations or see the bucket before the sum (the instrument is
// monotone, never inconsistent in rank order by more than the writes
// in flight).
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns)) // 1..63 for positive int64
}

// BucketUpper returns the inclusive upper bound (ns) of bucket i.
func BucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 63:
		return math.MaxInt64
	default:
		return 1<<i - 1
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// Start begins a measurement; the returned func stops and records it.
// Usage: defer hist.Start()(). Mirrors Timer.Start so call sites can
// migrate between the two instruments without changing shape.
func (h *Histogram) Start() func() {
	begin := time.Now()
	return func() { h.Observe(time.Since(begin)) }
}

// Count returns the number of observations (the sum over buckets).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Total returns the accumulated duration.
func (h *Histogram) Total() time.Duration { return time.Duration(h.sum.Load()) }

// Counts returns a snapshot of the per-bucket counts.
func (h *Histogram) Counts() [HistBuckets]int64 {
	var out [HistBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded
// distribution, interpolating linearly inside the selected bucket.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts := h.Counts()
	var total int64
	for _, c := range counts {
		total += c
	}
	return quantileOf(counts, total, q)
}

// quantileOf computes a quantile from a bucket snapshot (shared by
// Quantile and Registry.Snapshot, which batches three quantiles off one
// snapshot).
func quantileOf(counts [HistBuckets]int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank in [1, total]: the smallest k with cum(k) ≥ q·total.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = BucketUpper(i-1) + 1
		}
		hi := BucketUpper(i)
		// Position of the ranked observation within this bucket.
		pos := float64(rank-(cum-c)) / float64(c)
		return time.Duration(lo) + time.Duration(pos*float64(hi-lo))
	}
	return time.Duration(BucketUpper(HistBuckets - 1))
}

// QuantilesFromBuckets estimates quantiles from an exported bucket
// snapshot (HistogramValue.Buckets), so exposition code can derive
// quantiles without holding the live instrument.
func QuantilesFromBuckets(buckets [HistBuckets]int64, qs []float64) []time.Duration {
	var total int64
	for _, c := range buckets {
		total += c
	}
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = quantileOf(buckets, total, q)
	}
	return out
}

// reset zeroes all buckets and the sum.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
}
