// Benchmarks regenerating the paper's evaluation, one per figure panel,
// plus micro-benchmarks for the analysis and simulation engines.
//
// The Fig6* benchmarks run a scaled-down instance of the corresponding
// experiment per iteration (fewer graphs and a shorter horizon than the
// paper's 10-minute runs — use cmd/disparity-exp -paper for full scale);
// they exist so `go test -bench` exercises and times every experiment
// code path.
package disparity_test

import (
	"math/rand"
	"testing"

	disparity "repro"
	"repro/internal/chains"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/timeu"
	"repro/internal/trace/span"
	"repro/internal/waters"
)

func benchCfg() exp.Config {
	cfg := exp.Defaults()
	cfg.GraphsPerPoint = 2
	cfg.OffsetsPerGraph = 2
	cfg.Horizon = timeu.Second
	cfg.Warmup = 200 * timeu.Millisecond
	return cfg
}

// BenchmarkFig6a regenerates the Fig. 6(a) series: Sim / P-diff / S-diff
// absolute disparity versus task count.
func BenchmarkFig6a(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{5, 15, 25}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6b regenerates the Fig. 6(b) series: incremental ratios of
// P-diff and S-diff against simulation.
func BenchmarkFig6b(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{5, 15, 25}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6c regenerates the Fig. 6(c) series: Sim / S-diff and their
// buffered counterparts on two-chain graphs.
func BenchmarkFig6c(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{5, 15}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6c(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6d regenerates the Fig. 6(d) series: incremental ratios of
// the buffered experiment.
func BenchmarkFig6d(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{5, 15}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6d(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6aUncached is BenchmarkFig6a with the memoization layer
// disabled; compare the two to see the cache's effect on the full
// (simulation-dominated) sweep.
func BenchmarkFig6aUncached(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{5, 15, 25}
	cfg.DisableCache = true
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundsSweepCached times the analysis-only sweep (P-diff,
// S-diff, greedy S-diff-B; no simulation) at the Defaults() experiment
// scale with the per-graph AnalysisCache enabled. Together with
// BenchmarkBoundsSweepUncached this measures the memoization layer on
// the workload it targets; the emitted tables are bit-identical.
func BenchmarkBoundsSweepCached(b *testing.B) {
	cfg := exp.Defaults()
	for i := 0; i < b.N; i++ {
		if _, err := exp.BoundsSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundsSweepUncached is the cache-disabled baseline of
// BenchmarkBoundsSweepCached.
func BenchmarkBoundsSweepUncached(b *testing.B) {
	cfg := exp.Defaults()
	cfg.DisableCache = true
	for i := 0; i < b.N; i++ {
		if _, err := exp.BoundsSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraph builds one schedulable 25-task GNM workload for the
// analysis micro-benchmarks.
func benchGraph(b *testing.B) (*disparity.Graph, disparity.TaskID) {
	b.Helper()
	for seed := int64(1); seed < 100; seed++ {
		g, err := disparity.GenerateGNM(25, 50, disparity.GenConfig{Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disparity.Analyze(g); err != nil {
			continue
		}
		return g, g.Sinks()[0]
	}
	b.Fatal("no schedulable benchmark graph found")
	return nil, 0
}

// BenchmarkAnalyzePDiff times the Theorem-1 task-level analysis on a
// 25-task workload (the paper's efficiency claim: analysis is cheap
// compared to simulation).
func BenchmarkAnalyzePDiff(b *testing.B) {
	g, sink := benchGraph(b)
	a, err := disparity.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Disparity(sink, disparity.PDiff, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeSDiff times the Theorem-2 task-level analysis.
func BenchmarkAnalyzeSDiff(b *testing.B) {
	g, sink := benchGraph(b)
	a, err := disparity.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Disparity(sink, disparity.SDiff, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairBounds times the trie-based analysis fast path end to
// end on a fresh analysis per iteration: build the chain index, the
// per-node bound prefix sums, and run the dominance-pruned pair loop.
// This is the per-graph analysis cost a sweep actually pays (nothing is
// amortized across iterations). Compare with
// BenchmarkPairBoundsReference, the legacy per-pair pipeline on the
// same workload; BENCH_analysis.json records both.
func BenchmarkPairBounds(b *testing.B) {
	g, sink := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := disparity.Analyze(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.DisparityBound(sink, disparity.SDiff, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairBoundsReference is the reference pipeline
// (enumerate, strip each pair's suffix, bound via PairDisparity) on the
// BenchmarkPairBounds workload — the fast path's speedup baseline.
func BenchmarkPairBoundsReference(b *testing.B) {
	g, sink := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := disparity.Analyze(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.DisparityReference(sink, disparity.SDiff, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainIndex times building the shared prefix trie over 𝒫
// (chains.NewIndex); compare with BenchmarkEnumerateChains, which
// materializes every chain separately.
func BenchmarkChainIndex(b *testing.B) {
	g, sink := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := chains.NewIndex(g, sink, 0); idx.NumChains() == 0 {
			b.Fatal("empty index")
		}
	}
}

// fleetBenchGraph builds the default ~2000-task fleet workload once
// per benchmark (schedulable by construction, so no retry loop skews
// the measurement) and returns it with its single sink.
func fleetBenchGraph(b *testing.B) (*disparity.Graph, disparity.TaskID) {
	b.Helper()
	g, _, err := disparity.GenerateFleet(disparity.FleetConfig{}, disparity.GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if g.NumTasks() < 2000 {
		b.Fatalf("fleet workload has %d tasks, want ≥ 2000", g.NumTasks())
	}
	return g, g.Sinks()[0]
}

// BenchmarkChainIndexFleet times the incremental trie build at fleet
// scale: ~2000 tasks with multi-word path masks.
func BenchmarkChainIndexFleet(b *testing.B) {
	g, sink := fleetBenchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := chains.NewIndex(g, sink, 0)
		if idx.NumChains() == 0 {
			b.Fatal("empty index")
		}
		if _, stride := idx.PathMasks(); stride < 2 {
			b.Fatalf("fleet masks stride = %d, want multi-word", stride)
		}
	}
}

// BenchmarkPairBoundsFleet times the full bound-only analysis on the
// fleet workload — fresh analysis, streaming index+bounds build, and
// the flat block-parallel pair loop over ~40k pairs with multi-word
// masks — with the subtree branch-and-bound OFF: the all-pairs
// baseline the .../Pruned ratio pair in tools/bench_compare divides
// against.
func BenchmarkPairBoundsFleet(b *testing.B) {
	defer func(old bool) { core.SubtreePrune = old }(core.SubtreePrune)
	core.SubtreePrune = false
	g, sink := fleetBenchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := disparity.Analyze(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.DisparityBound(sink, disparity.SDiff, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairBoundsFleetPruned is the same workload on the default
// configuration (subtree pruning on). Besides the wall-clock ratio,
// it asserts the prune actually engages: the pairs enumerated per
// iteration (evaluated + per-pair pruned) must be at most half the
// pair count, i.e. at least 2x fewer than the all-pairs baseline.
func BenchmarkPairBoundsFleetPruned(b *testing.B) {
	g, sink := fleetBenchGraph(b)
	bounded := metrics.C("core.pairs.bounded")
	pruned := metrics.C("core.pairs.pruned")
	b0, p0 := bounded.Load(), pruned.Load()
	var numPairs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := disparity.Analyze(g)
		if err != nil {
			b.Fatal(err)
		}
		td, err := a.DisparityBound(sink, disparity.SDiff, 0)
		if err != nil {
			b.Fatal(err)
		}
		numPairs = td.NumPairs
	}
	b.StopTimer()
	if enumerated := (bounded.Load() - b0) + (pruned.Load() - p0); enumerated > int64(b.N)*int64(numPairs)/2 {
		b.Fatalf("subtree prune ineffective: %d pairs enumerated over %d iterations of %d pairs (want ≤ half)",
			enumerated, b.N, numPairs)
	}
}

// BenchmarkSimulateSecond times simulating one second of the 25-task
// workload (reported allocations dominate the merge of source stamps).
func BenchmarkSimulateSecond(b *testing.B) {
	g, _ := benchGraph(b)
	disparity.RandomOffsets(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon: timeu.Second,
			Exec:    disparity.ExecExtremes,
			Seed:    int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimThroughput measures raw simulator throughput — simulated
// jobs per wall-clock second — on a fixed schedulable 25-task WATERS
// workload over a long horizon. It is the pure-engine counterpart of the
// Fig6* benchmarks: no graph generation, no analysis, just the
// discrete-event loop. Run with -benchmem; steady-state allocations per
// job should be ~0 (see internal/sim's alloc regression test).
func BenchmarkSimThroughput(b *testing.B) {
	g, _ := benchGraph(b)
	disparity.RandomOffsets(g, 1)
	var jobs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon: 10 * timeu.Second,
			Exec:    disparity.ExecExtremes,
			Seed:    42,
		})
		if err != nil {
			b.Fatal(err)
		}
		jobs += res.Jobs
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(jobs)/secs, "jobs/s")
	}
}

// BenchmarkSimThroughputTraced is BenchmarkSimThroughput with a live
// Chrome span track attached to the engine. The delta against the
// untraced benchmark is the cost of *enabled* tracing (one countdown
// decrement per job plus one span per 65536-job chunk); the untraced
// benchmark itself guards the disabled path, which must stay within
// the tolerance recorded in BENCH_sim.json (see make verify-obs).
func BenchmarkSimThroughputTraced(b *testing.B) {
	g, _ := benchGraph(b)
	disparity.RandomOffsets(g, 1)
	tracer := span.New()
	var jobs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon: 10 * timeu.Second,
			Exec:    disparity.ExecExtremes,
			Seed:    42,
			Trace:   tracer.Track("bench"),
		})
		if err != nil {
			b.Fatal(err)
		}
		jobs += res.Jobs
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(jobs)/secs, "jobs/s")
	}
	if tracer.SpanCount() == 0 {
		b.Fatal("traced run recorded no spans")
	}
}

// BenchmarkSimJumpAhead measures the steady-state jump-ahead fast path
// on a deterministic periodic workload: a 25-task WATERS graph with
// WCET execution over a 60-second horizon, of which everything past the
// transient prefix is one detected hyperperiod cycle replayed by the
// fast-forward. BenchmarkSimJumpAheadDisabled executes the same run in
// full; their ratio is the jump-ahead speedup recorded in
// BENCH_sim.json. The reported jobs/s counts simulated (including
// skipped) jobs.
func BenchmarkSimJumpAhead(b *testing.B) { benchJumpAhead(b, false) }

// BenchmarkSimJumpAheadDisabled is the full-execution baseline of
// BenchmarkSimJumpAhead.
func BenchmarkSimJumpAheadDisabled(b *testing.B) { benchJumpAhead(b, true) }

func benchJumpAhead(b *testing.B, disable bool) {
	g, _ := benchGraph(b)
	disparity.RandomOffsets(g, 1)
	var jobs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon:          60 * timeu.Second,
			Exec:             disparity.ExecWCET,
			Seed:             42,
			DisableJumpAhead: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !disable && !res.Jump.Engaged {
			b.Fatalf("jump-ahead did not engage: %+v", res.Jump)
		}
		jobs += res.Jobs
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(jobs)/secs, "jobs/s")
	}
}

// BenchmarkBatchSweep measures the inner loop of the experiment
// pipeline: a 20-run random-offset sweep through one shared engine
// (sim.Batch), WCET execution so jump-ahead engages per run. The
// per-run cost is what a thousand-variant sweep pays after the first
// run has warmed the pools.
func BenchmarkBatchSweep(b *testing.B) {
	g, _ := benchGraph(b)
	batch, err := sim.NewBatch(g, sim.Config{Horizon: 10 * timeu.Second, Exec: sim.WCETExec{}})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var offsets []timeu.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for run := 0; run < 20; run++ {
			offsets = waters.DrawOffsets(g, rng, offsets[:0])
			if _, err := batch.Run(sim.BatchRun{
				Seed:      rng.Int63(),
				Offsets:   offsets,
				Observers: []sim.Observer{sim.NewDisparityObserver(timeu.Second)},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEnumerateChains times path enumeration on the workload.
func BenchmarkEnumerateChains(b *testing.B) {
	g, sink := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disparity.EnumerateChains(g, sink, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWCRT times the non-preemptive response-time analysis.
func BenchmarkWCRT(b *testing.B) {
	g, _ := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disparity.WCRT(g)
	}
}

// BenchmarkOptimize times Algorithm 1 on a two-chain workload.
func BenchmarkOptimize(b *testing.B) {
	var (
		g      *disparity.Graph
		la, nu disparity.Chain
		a      *disparity.Analysis
	)
	for seed := int64(1); ; seed++ {
		var err error
		g, la, nu, err = disparity.GenerateTwoChains(10, disparity.GenConfig{Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		if a, err = disparity.Analyze(g); err == nil {
			break
		}
		if seed > 100 {
			b.Fatal("no schedulable two-chain workload")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Optimize(la, nu); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackward regenerates the Lemma-4/5 vs baseline
// ablation table.
func BenchmarkAblationBackward(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{10, 20}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationBackward(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTail regenerates the shared-tail sweep.
func BenchmarkAblationTail(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{0, 3, 6}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationTail(cfg, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExec regenerates the execution-model comparison.
func BenchmarkAblationExec(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{10}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationExec(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSemantics regenerates the implicit-vs-LET comparison.
func BenchmarkAblationSemantics(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{10}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationSemantics(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUtilization regenerates the load sweep.
func BenchmarkAblationUtilization(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{10, 40}
	cfg.ECUs = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationUtilization(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyBuffers regenerates the greedy-buffer table.
func BenchmarkAblationGreedyBuffers(b *testing.B) {
	cfg := benchCfg()
	cfg.Points = []int{10}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationGreedyBuffers(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactLET times the closed-form LET disparity analysis.
func BenchmarkExactLET(b *testing.B) {
	g, fusion, err := disparity.GenerateAutomotive(disparity.AutomotiveConfig{}, disparity.GenConfig{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		g.Task(disparity.TaskID(i)).Sem = disparity.LET
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disparity.ExactLETDisparity(g, fusion); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenMerge times the simulator's stamp merging in isolation.
func BenchmarkTokenMerge(b *testing.B) {
	mk := func(tasks ...int) *sim.Token {
		t := &sim.Token{}
		for _, id := range tasks {
			t.Stamps = append(t.Stamps, sim.Stamp{Task: disparity.TaskID(id), Min: 1, Max: 2})
		}
		return t
	}
	tokens := []*sim.Token{mk(0, 2, 4, 6), mk(1, 2, 3, 8), mk(0, 5, 9)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := sim.Job{Out: tokens[i%3]}
		_ = j.Out.Span()
	}
}
