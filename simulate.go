package disparity

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/timeu"
	"repro/internal/trace/span"
)

// ExecModel draws job execution times during simulation.
type ExecModel = sim.ExecModel

// Execution-time models for SimConfig.Exec.
var (
	// ExecWCET runs every job at its WCET.
	ExecWCET ExecModel = sim.WCETExec{}
	// ExecBCET runs every job at its BCET.
	ExecBCET ExecModel = sim.BCETExec{}
	// ExecUniform draws uniformly from [BCET, WCET].
	ExecUniform ExecModel = sim.UniformExec{}
	// ExecExtremes draws BCET or WCET with equal probability — the model
	// that most readily exhibits worst-case disparity patterns.
	ExecExtremes ExecModel = sim.ExtremesExec{P: 0.5}
)

// Observer receives completed jobs during simulation; see package
// internal/sim for the Job fields.
type Observer = sim.Observer

// JumpStats reports whether a run used steady-state jump-ahead and how
// much simulated time it skipped; see internal/sim and DESIGN.md
// "Steady-state jump-ahead".
type JumpStats = sim.JumpStats

// Job is one completed execution instance, as passed to observers.
type Job = sim.Job

// SimConfig parameterizes Simulate.
type SimConfig struct {
	// Horizon is the simulated time span (required, positive).
	Horizon Time
	// Warmup discards jobs finishing before it from the built-in
	// measurements, letting buffers reach steady state.
	Warmup Time
	// Exec defaults to ExecWCET.
	Exec ExecModel
	// Seed drives all randomness of the run.
	Seed int64
	// Observers receive every completed job, in addition to the built-in
	// disparity measurement.
	Observers []Observer
	// Trace, when non-nil, records engine-level spans (one per run plus
	// sampled progress chunks) on the track; see internal/trace/span.
	Trace *span.Track
	// DisableJumpAhead forces full execution of every job instead of
	// skipping repeated steady-state hyperperiod cycles. Results are
	// bit-identical either way; the switch exists for benchmarking and
	// differential testing.
	DisableJumpAhead bool
}

// ChannelStats is the token flow of one edge during a simulation; Lost
// counts tokens evicted before any consumer read them (§IV's wasted
// computation).
type ChannelStats = sim.ChannelStats

// SimResult reports a simulation run.
type SimResult struct {
	// MaxDisparity is the largest observed time disparity per task
	// (Definition 2), for tasks that produced at least one output after
	// warm-up.
	MaxDisparity map[TaskID]Time
	// Jobs is the number of completed jobs.
	Jobs int64
	// Overruns counts releases that found a previous job of the same task
	// unfinished (0 for schedulable systems).
	Overruns int64
	// Channels reports per-edge token flow (writes, reads, tokens lost
	// unread), in the graph's edge order.
	Channels []ChannelStats
	// Jump reports the steady-state jump-ahead outcome of the run:
	// whether the engine was eligible to skip repeated hyperperiod
	// cycles, and how many it skipped. Purely informational — the
	// remaining fields are identical with jump-ahead on or off.
	Jump JumpStats
}

// Simulate runs the discrete-event simulator of §II-B on the graph and
// returns the observed maximum disparities. The observed value is an
// achievable lower bound on the worst case: Analyze's bounds must always
// dominate it.
func Simulate(g *Graph, cfg SimConfig) (*SimResult, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("disparity: non-positive horizon %v", cfg.Horizon)
	}
	obs := sim.NewDisparityObserver(cfg.Warmup)
	eng, err := sim.NewEngine(g)
	if err != nil {
		return nil, err
	}
	stats, err := eng.Run(sim.Config{
		Horizon:          cfg.Horizon,
		Exec:             cfg.Exec,
		Seed:             cfg.Seed,
		Observers:        append([]Observer{obs}, cfg.Observers...),
		Trace:            cfg.Trace,
		DisableJumpAhead: cfg.DisableJumpAhead,
	})
	if err != nil {
		return nil, err
	}
	out := &SimResult{
		MaxDisparity: make(map[TaskID]Time, g.NumTasks()),
		Jobs:         stats.Jobs,
		Overruns:     stats.Overruns,
		Channels:     stats.Channels,
		Jump:         eng.LastJump(),
	}
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		out.MaxDisparity[id] = obs.Max(id)
	}
	return out, nil
}

// MeasureBackward simulates the graph and returns the observed range of
// backward times from the source task to the tail task, for validating
// the analytical bounds ℬ(π) ≤ observed ≤ 𝒲(π).
func MeasureBackward(g *Graph, tail, source TaskID, cfg SimConfig) (min, max Time, err error) {
	if cfg.Horizon <= 0 {
		return 0, 0, fmt.Errorf("disparity: non-positive horizon %v", cfg.Horizon)
	}
	bo := sim.NewBackwardObserver(tail, source, cfg.Warmup)
	_, err = sim.Run(g, sim.Config{
		Horizon:   cfg.Horizon,
		Exec:      cfg.Exec,
		Seed:      cfg.Seed,
		Observers: append([]Observer{bo}, cfg.Observers...),
	})
	if err != nil {
		return 0, 0, err
	}
	lo, hi, ok := bo.Range()
	if !ok {
		return 0, 0, fmt.Errorf("disparity: no data from task %d reached task %d within the horizon",
			source, tail)
	}
	return lo, hi, nil
}

// RandomOffsets draws every task's release offset uniformly from
// [0, period), the offset model of the paper's evaluation.
func RandomOffsets(g *Graph, seed int64) {
	rng := newRand(seed)
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(model.TaskID(i))
		t.Offset = timeu.Time(rng.Int63n(int64(t.Period)))
	}
}
