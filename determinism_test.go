package disparity_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	disparity "repro"
	"repro/internal/timeu"
)

// TestSimulateDeterministic pins the simulator's reproducibility
// contract: the same SimConfig.Seed yields a byte-identical SimResult —
// including the Channels order and Overruns — across repeated runs and
// regardless of GOMAXPROCS (the engine is single-goroutine; the
// parallelism settings of the surrounding process must not leak in).
// The JSON encoding is the byte-level witness: maps marshal with sorted
// keys, so any drift in any field changes the bytes.
func TestSimulateDeterministic(t *testing.T) {
	g, err := disparity.GenerateGNM(20, 40, disparity.GenConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	disparity.RandomOffsets(g, 3)
	cfg := disparity.SimConfig{
		Horizon: 2 * timeu.Second,
		Warmup:  200 * timeu.Millisecond,
		Exec:    disparity.ExecExtremes,
		Seed:    1234,
	}
	encode := func() []byte {
		t.Helper()
		res, err := disparity.Simulate(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs == 0 || len(res.Channels) == 0 {
			t.Fatalf("degenerate run: %+v", res)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	want := encode()
	for run := 0; run < 3; run++ {
		if got := encode(); !bytes.Equal(got, want) {
			t.Fatalf("run %d at GOMAXPROCS=1 diverged:\n%s\nvs\n%s", run, got, want)
		}
	}
	runtime.GOMAXPROCS(8)
	for run := 0; run < 3; run++ {
		if got := encode(); !bytes.Equal(got, want) {
			t.Fatalf("run %d at GOMAXPROCS=8 diverged:\n%s\nvs\n%s", run, got, want)
		}
	}
}

// TestSimulateJumpAheadDeterministic pins the jump-ahead transparency
// contract at the public API: a deterministic periodic run with
// steady-state jump-ahead engaged returns a SimResult byte-identical
// (modulo the informational Jump field) to the same run with
// DisableJumpAhead set — over a horizon long enough that the jumped run
// skips most of its cycles.
func TestSimulateJumpAheadDeterministic(t *testing.T) {
	g, err := disparity.GenerateGNM(20, 40, disparity.GenConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	disparity.RandomOffsets(g, 3)
	cfg := disparity.SimConfig{
		Horizon: 30 * timeu.Second,
		Warmup:  200 * timeu.Millisecond,
		Exec:    disparity.ExecWCET,
		Seed:    1234,
	}
	encode := func(disable bool) ([]byte, disparity.JumpStats) {
		t.Helper()
		cfg.DisableJumpAhead = disable
		res, err := disparity.Simulate(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs == 0 || len(res.Channels) == 0 {
			t.Fatalf("degenerate run: %+v", res)
		}
		jump := res.Jump
		res.Jump = disparity.JumpStats{} // the only field allowed to differ
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b, jump
	}
	jumped, js := encode(false)
	if !js.Engaged {
		t.Fatalf("jump-ahead did not engage on a deterministic periodic run: %+v", js)
	}
	full, fs := encode(true)
	if fs.Eligible || fs.Engaged {
		t.Fatalf("disabled run still armed: %+v", fs)
	}
	if !bytes.Equal(jumped, full) {
		t.Fatalf("jump-ahead changed the result:\njumped: %s\nfull:   %s", jumped, full)
	}
}
