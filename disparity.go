// Package disparity analyzes and optimizes the worst-case time disparity
// of tasks in cause-effect chains, reproducing "Analysis and Optimization
// of Worst-Case Time Disparity in Cause-Effect Chains" (DATE 2023).
//
// Time disparity is the maximum difference among the timestamps of the
// raw sensor data that one output of a fusion task originates from — the
// quantity that must stay below a threshold for sensor fusion (camera +
// LiDAR, etc.) to be meaningful. This package provides:
//
//   - a cause-effect graph model (periodic tasks on ECUs, bounded
//     channels, implicit communication, non-preemptive fixed-priority
//     scheduling);
//   - worst-/best-case backward-time bounds per chain (Lemmas 4/5);
//   - the pairwise and task-level disparity bounds P-diff (Theorem 1) and
//     S-diff (Theorem 2);
//   - the buffer-sizing optimization of Algorithm 1 with its Theorem-3
//     bound (S-diff-B);
//   - a discrete-event simulator measuring achieved disparities and
//     backward times;
//   - WATERS-2015 workload generation and the paper's full Fig. 6
//     experiment harness.
//
// # Quick start
//
//	g := disparity.NewGraph()
//	ecu := g.AddECU("ecu0", disparity.Compute)
//	cam := g.AddTask(disparity.Task{Name: "camera", Period: 10 * disparity.Millisecond, ECU: disparity.NoECU})
//	... add tasks and edges ...
//	a, err := disparity.Analyze(g)
//	td, err := a.Disparity(fusionTask, disparity.SDiff, 0)
//	fmt.Println(td.Bound)
//
// See examples/ for complete programs.
package disparity

import (
	"io"

	"repro/internal/backward"
	"repro/internal/can"
	"repro/internal/chains"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/timeu"
)

// Time is a point or span on the integer nanosecond timeline.
type Time = timeu.Time

// Convenient time spans.
const (
	Nanosecond  = timeu.Nanosecond
	Microsecond = timeu.Microsecond
	Millisecond = timeu.Millisecond
	Second      = timeu.Second
	Minute      = timeu.Minute
)

// ParseTime parses "5ms", "4.75us", etc.
func ParseTime(s string) (Time, error) { return timeu.Parse(s) }

// Graph is a cause-effect graph: tasks, channels, ECUs.
type Graph = model.Graph

// Task is one vertex: (WCET, BCET, Period) plus priority and ECU mapping.
type Task = model.Task

// TaskID identifies a task within a graph.
type TaskID = model.TaskID

// ECUID identifies a processing unit.
type ECUID = model.ECUID

// ECUKind distinguishes compute ECUs from buses.
type ECUKind = model.ECUKind

// Edge is a channel between two tasks with a buffer capacity.
type Edge = model.Edge

// Chain is a path through the graph, head (source) to tail.
type Chain = model.Chain

// ECU kinds and the unscheduled-stimulus marker.
const (
	Compute = model.Compute
	Bus     = model.Bus
	NoECU   = model.NoECU
)

// Semantics selects a task's communication timing: Implicit (the paper's
// read-at-start / write-at-finish) or LET (read at release, publish at
// deadline — deterministic data flow).
type Semantics = model.Semantics

// The two supported communication semantics.
const (
	Implicit = model.Implicit
	LET      = model.LET
)

// NewGraph returns an empty cause-effect graph.
func NewGraph() *Graph { return model.NewGraph() }

// CANBus describes a CAN bus (bit rate, identifier format, payload) for
// rewriting cross-ECU edges into periodic frame tasks with realistic
// transmission times (Davis et al.'s worst-case frame length).
type CANBus = can.Bus

// CAN bit rates and frame formats for CANBus.
const (
	Baud125k    = can.Baud125k
	Baud250k    = can.Baud250k
	Baud500k    = can.Baud500k
	Baud1M      = can.Baud1M
	CANStandard = can.Standard
	CANExtended = can.Extended
)

// ReadGraph deserializes a graph from JSON (see Graph.WriteJSON).
func ReadGraph(r io.Reader) (*Graph, error) { return model.ReadJSON(r) }

// Method selects the pairwise disparity bound: PDiff (Theorem 1, chains
// independent) or SDiff (Theorem 2, fork-join aware).
type Method = core.Method

// The two analysis methods of the paper.
const (
	PDiff = core.PDiff
	SDiff = core.SDiff
)

// Analysis bounds time disparities on one graph.
type Analysis = core.Analysis

// PairBound is the disparity bound of one chain pair with its
// intermediate quantities (sampling windows, alignment coefficients).
type PairBound = core.PairBound

// TaskDisparity is the task-level worst-case disparity bound with the
// per-pair breakdown.
type TaskDisparity = core.TaskDisparity

// BufferPlan is Algorithm 1's buffer-sizing decision and the Theorem-3
// bound it achieves.
type BufferPlan = core.BufferPlan

// GreedyResult is the outcome of the multi-round buffer optimization
// (Analysis.OptimizeTaskGreedy), an extension of the paper's single-pair
// Algorithm 1.
type GreedyResult = core.GreedyResult

// Window is a sampling window: the time range, relative to the analyzed
// job's release, within which a source's timestamp lies.
type Window = backward.Window

// Analyze prepares the disparity analysis of the paper for the graph:
// WCRT analysis under non-preemptive fixed priority, then the Lemma-4/5
// backward-time bounds. It fails if the graph is invalid or not
// schedulable.
func Analyze(g *Graph) (*Analysis, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return core.New(g)
}

// AnalysisCache interns the intermediate results of the analysis of one
// graph: the WCRT fixed point per scheduling policy, backward-time
// bounds per chain suffix, and pairwise/task-level disparity bounds.
// Cached results are bit-identical to uncached ones; the cache must not
// be shared across graphs.
type AnalysisCache = core.AnalysisCache

// NewAnalysisCache returns an empty cache for one graph.
func NewAnalysisCache() *AnalysisCache { return core.NewAnalysisCache() }

// AnalyzeWithCache is Analyze backed by a memoization cache: repeated
// bound queries (and the schedulability analysis, when the cache has
// already run it via AnalysisCache.Sched) are computed once per graph.
func AnalyzeWithCache(g *Graph, cache *AnalysisCache) (*Analysis, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return core.NewCached(g, cache)
}

// EnumerateChains lists every chain from a source task of g to the given
// task — the set 𝒫 of the paper. maxChains ≤ 0 applies a safe default cap.
func EnumerateChains(g *Graph, task TaskID, maxChains int) ([]Chain, error) {
	return chains.Enumerate(g, task, maxChains)
}

// WCRT returns upper bounds on the worst-case response times of all tasks
// under non-preemptive fixed-priority scheduling, and whether every task
// meets R(τ) ≤ T(τ).
func WCRT(g *Graph) (bounds []Time, schedulable bool) {
	res := sched.Analyze(g, sched.NonPreemptiveFP)
	return res.WCRT, res.Schedulable
}

// AssignRateMonotonic assigns per-ECU rate-monotonic priorities.
func AssignRateMonotonic(g *Graph) { sched.AssignRateMonotonic(g) }

// AssignTopological assigns per-ECU priorities along the data flow
// (producers above consumers), which puts every same-ECU chain hop into
// Lemma 4's cheap θ = T case and tightens the disparity bounds; re-check
// schedulability afterwards.
func AssignTopological(g *Graph) error { return sched.AssignTopological(g) }

// ThresholdReport answers the paper's verification question for one
// task: does its worst-case time disparity stay within the threshold the
// fusion algorithm tolerates?
type ThresholdReport = core.ThresholdReport

// BackwardBounds returns [𝒲(π), ℬ(π)]: the worst-case backward time upper
// bound (Lemma 4) and best-case backward time lower bound (Lemma 5) of a
// chain, honoring channel buffer capacities (Lemma 6).
func BackwardBounds(g *Graph, pi Chain) (wcbt, bcbt Time, err error) {
	an, err := backwardAnalyzer(g, pi)
	if err != nil {
		return 0, 0, err
	}
	return an.WCBT(pi), an.BCBT(pi), nil
}

// EndToEnd holds the classical end-to-end latency bounds of one chain,
// provided alongside the disparity analysis for completeness: the paper
// contrasts time disparity with these established metrics (§I).
type EndToEnd struct {
	// MaxDataAge bounds how stale the source data behind an output can
	// be (backward time plus the tail's response time, footnote 2 of the
	// paper); MinDataAge is the corresponding lower bound.
	MaxDataAge, MinDataAge Time
	// MaxReaction bounds the span from a stimulus to the finish of the
	// first output reflecting it.
	MaxReaction Time
	// Davare is the classical scheduler-agnostic Σ(T+R) bound that both
	// MaxDataAge and MaxReaction refine.
	Davare Time
}

// EndToEndBounds computes the end-to-end latency bounds of a chain under
// non-preemptive fixed-priority scheduling.
func EndToEndBounds(g *Graph, pi Chain) (*EndToEnd, error) {
	an, err := backwardAnalyzer(g, pi)
	if err != nil {
		return nil, err
	}
	return &EndToEnd{
		MaxDataAge:  an.DataAge(pi),
		MinDataAge:  an.MinDataAge(pi),
		MaxReaction: an.Reaction(pi),
		Davare:      an.DavareBound(pi),
	}, nil
}

func backwardAnalyzer(g *Graph, pi Chain) (*backward.Analyzer, error) {
	if err := pi.ValidIn(g); err != nil {
		return nil, err
	}
	res := sched.Analyze(g, sched.NonPreemptiveFP)
	return backward.NewAnalyzer(g, res, backward.NonPreemptive), nil
}
