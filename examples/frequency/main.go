// Frequency: reproduces the counter-intuitive observation of §IV (Fig. 4
// of the paper): raising the sampling frequency of an intermediate task
// does NOT reduce the worst-case time disparity of the fusion task,
// because the worst case pairs the worst-case backward time on one chain
// with the best-case on the other. Buffer sizing (Algorithm 1) is the
// effective remedy.
package main

import (
	"fmt"
	"log"

	disparity "repro"
)

// build constructs the Fig. 4 graph: τ1 →(T=t3Period) τ3 → τ5 and
// τ2 → τ4 → τ5, with τ5 running at 30 ms.
func build(t3Period disparity.Time) (*disparity.Graph, disparity.TaskID) {
	ms := disparity.Millisecond
	g := disparity.NewGraph()
	ecu := g.AddECU("ecu0", disparity.Compute)
	t1 := g.AddTask(disparity.Task{Name: "t1", Period: 10 * ms, ECU: disparity.NoECU})
	t2 := g.AddTask(disparity.Task{Name: "t2", Period: 30 * ms, ECU: disparity.NoECU})
	t3 := g.AddTask(disparity.Task{Name: "t3", WCET: 2 * ms, BCET: 1 * ms, Period: t3Period, Prio: 0, ECU: ecu})
	t4 := g.AddTask(disparity.Task{Name: "t4", WCET: 3 * ms, BCET: 1 * ms, Period: 30 * ms, Prio: 1, ECU: ecu})
	t5 := g.AddTask(disparity.Task{Name: "t5", WCET: 4 * ms, BCET: 2 * ms, Period: 30 * ms, Prio: 2, ECU: ecu})
	for _, e := range [][2]disparity.TaskID{{t1, t3}, {t2, t4}, {t3, t5}, {t4, t5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	return g, t5
}

func bound(t3Period disparity.Time) disparity.Time {
	g, t5 := build(t3Period)
	a, err := disparity.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	td, err := a.Disparity(t5, disparity.SDiff, 0)
	if err != nil {
		log.Fatal(err)
	}
	return td.Bound
}

func main() {
	ms := disparity.Millisecond

	slow := bound(30 * ms)
	fast := bound(10 * ms)
	fmt.Println("worst-case time disparity of τ5 (S-diff):")
	fmt.Printf("  T(τ3) = 30ms: %v\n", slow)
	fmt.Printf("  T(τ3) = 10ms: %v  <- tripling τ3's frequency\n", fast)
	if fast >= slow {
		fmt.Println("raising the frequency did not help — as §IV of the paper explains,")
		fmt.Println("the worst case is WCBT on one chain vs BCBT on the other, which the")
		fmt.Println("sampling frequency of τ3 does not change.")
	}

	// What does help: shifting the earlier sampling window with a buffer.
	g, t5 := build(30 * ms)
	a, err := disparity.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	plan, _, err := a.OptimizeTask(t5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 1 instead: buffer %s -> %s at capacity %d\n",
		g.Task(plan.Edge.Src).Name, g.Task(plan.Edge.Dst).Name, plan.Cap)
	fmt.Printf("bound %v -> %v (L = %v)\n", plan.Before, plan.After, plan.L)

	// The paper's other §IV observation: the fast τ3 wastes computation.
	// With T(τ3) = 10ms feeding τ5 at 30ms, two-thirds of τ3's outputs
	// are evicted unread.
	fastG, fastT5 := build(10 * ms)
	res, err := disparity.Simulate(fastG, disparity.SimConfig{Horizon: 6 * disparity.Second})
	if err != nil {
		log.Fatal(err)
	}
	_ = fastT5
	for _, cs := range res.Channels {
		if fastG.Task(cs.Edge.Src).Name == "t3" {
			fmt.Printf("\nwith T(τ3)=10ms, τ3 -> τ5 loses %d of %d tokens unread (%.0f%%):\n",
				cs.Lost, cs.Writes, 100*float64(cs.Lost)/float64(cs.Writes))
			fmt.Println("the extra samples never propagate — computation is wasted, as §IV notes.")
		}
	}
}
