// Letoffsets: the Logical Execution Time (LET) view of time disparity.
//
// Under LET every job reads its inputs at its release and publishes its
// output exactly at its deadline, so the data flow — and therefore the
// time disparity — is fully determined by the task periods and release
// offsets, independent of scheduling and execution times. That turns
// disparity reduction into an offset-assignment problem, which this
// example solves with the library's coordinate-descent search and
// contrasts with the analytical bounds and with buffer sizing.
package main

import (
	"fmt"
	"log"

	disparity "repro"
)

func main() {
	ms := disparity.Millisecond

	// A camera/LiDAR fusion graph running entirely under LET.
	g := disparity.NewGraph()
	ecu := g.AddECU("ecu0", disparity.Compute)
	cam := g.AddTask(disparity.Task{Name: "camera", Period: 40 * ms, ECU: disparity.NoECU})
	lid := g.AddTask(disparity.Task{Name: "lidar", Period: 100 * ms, ECU: disparity.NoECU})
	det := g.AddTask(disparity.Task{Name: "detect", WCET: 8 * ms, BCET: 4 * ms, Period: 40 * ms, Prio: 0, ECU: ecu, Sem: disparity.LET})
	clu := g.AddTask(disparity.Task{Name: "cluster", WCET: 20 * ms, BCET: 10 * ms, Period: 100 * ms, Prio: 1, ECU: ecu, Sem: disparity.LET})
	fus := g.AddTask(disparity.Task{Name: "fusion", WCET: 10 * ms, BCET: 5 * ms, Period: 100 * ms, Prio: 2, ECU: ecu, Sem: disparity.LET})
	for _, e := range [][2]disparity.TaskID{{cam, det}, {lid, clu}, {det, fus}, {clu, fus}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// The analytical bounds hold for every offset assignment.
	a, err := disparity.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	td, err := a.Disparity(fus, disparity.SDiff, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S-diff bound (any offsets, LET): %v\n", td.Bound)

	// A deliberately bad offset assignment, evaluated exactly: under LET
	// one warm hyperperiod of simulation IS the ground truth.
	g.Task(cam).Offset = 17 * ms
	g.Task(lid).Offset = 63 * ms
	g.Task(det).Offset = 31 * ms
	measure := func(label string) disparity.Time {
		res, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon: 2 * disparity.Second,
			Warmup:  disparity.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := res.MaxDisparity[fus]
		fmt.Printf("%s: exact disparity %v\n", label, d)
		return d
	}
	before := measure("initial offsets     ")

	// Exec-time independence: the same system under a different
	// execution model shows the same disparity.
	resB, err := disparity.Simulate(g, disparity.SimConfig{
		Horizon: 2 * disparity.Second,
		Warmup:  disparity.Second,
		Exec:    disparity.ExecBCET,
	})
	if err != nil {
		log.Fatal(err)
	}
	if resB.MaxDisparity[fus] != before {
		log.Fatal("BUG: LET disparity depended on execution times")
	}
	fmt.Println("execution-time independence confirmed ✓")

	// Search offsets.
	opt, err := disparity.OptimizeOffsets(g, fus, disparity.OffsetOptConfig{Steps: 10, Rounds: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offset search: %v -> %v in %d evaluations\n", opt.Before, opt.After, opt.Evaluations)
	after := measure("optimized offsets   ")
	if after > before {
		log.Fatal("BUG: offset optimization regressed")
	}
	if after > td.Bound {
		log.Fatal("BUG: exact disparity above the analytical bound")
	}
	fmt.Println("\noffsets tuned the achieved disparity; the S-diff bound")
	fmt.Println("is offset-oblivious and still covers every assignment ✓")
}
