// Bufferopt: demonstrates Algorithm 1 end to end on a two-chain fusion
// graph (the Fig. 6(c) topology). It prints the sampling windows of the
// two sources, the buffer size the algorithm designs, the Theorem-3
// bound, and before/after simulation measurements.
package main

import (
	"fmt"
	"log"

	disparity "repro"
)

func main() {
	// A WATERS-parameterized pair of chains (5 tasks each) merged at a
	// sink. Regenerate until schedulable (as the paper's harness does)
	// and until the two sampling windows are misaligned by at least one
	// source period, so the buffer design has something to do.
	var (
		g      *disparity.Graph
		la, nu disparity.Chain
		a      *disparity.Analysis
	)
	for seed := int64(1); ; seed++ {
		var err error
		g, la, nu, err = disparity.GenerateTwoChains(5, disparity.GenConfig{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		if a, err = disparity.Analyze(g); err != nil {
			continue
		}
		if plan, err := a.Optimize(la, nu); err == nil && plan.L > 0 {
			break
		}
	}

	fmt.Println("chains:")
	fmt.Printf("  λ: %s\n", la.Format(g))
	fmt.Printf("  ν: %s\n", nu.Format(g))

	pb, err := a.PairDisparity(la, nu, disparity.SDiff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsampling windows relative to the analyzed job's release:\n")
	fmt.Printf("  source of λ: %v\n", pb.WindowLambda)
	fmt.Printf("  source of ν: %v\n", pb.WindowNu)
	fmt.Printf("S-diff bound: %v\n", pb.Bound)

	plan, err := a.Optimize(la, nu)
	if err != nil {
		log.Fatal(err)
	}
	shifted := "ν"
	if plan.ShiftedLambda {
		shifted = "λ"
	}
	fmt.Printf("\nAlgorithm 1: shift %s by buffering %s -> %s at capacity %d (L = %v)\n",
		shifted, g.Task(plan.Edge.Src).Name, g.Task(plan.Edge.Dst).Name, plan.Cap, plan.L)
	fmt.Printf("Theorem 3 (S-diff-B): %v -> %v\n", plan.Before, plan.After)

	// Measure both systems.
	measure := func(gr *disparity.Graph, label string) disparity.Time {
		var worst disparity.Time
		for seed := int64(0); seed < 5; seed++ {
			disparity.RandomOffsets(gr, seed)
			res, err := disparity.Simulate(gr, disparity.SimConfig{
				Horizon: 10 * disparity.Second,
				Warmup:  2 * disparity.Second,
				Exec:    disparity.ExecExtremes,
				Seed:    seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if d := res.MaxDisparity[la.Tail()]; d > worst {
				worst = d
			}
		}
		fmt.Printf("%s: max simulated disparity %v\n", label, worst)
		return worst
	}
	fmt.Println()
	simBefore := measure(g, "Sim   (no buffer)")
	buffered := g.Clone()
	if err := plan.Apply(buffered); err != nil {
		log.Fatal(err)
	}
	simAfter := measure(buffered, "Sim-B (buffered) ")

	if simBefore > plan.Before || simAfter > plan.After {
		log.Fatal("BUG: simulation exceeded an analytical bound")
	}
	fmt.Println("\nboth simulations within their bounds ✓")
	if simAfter <= simBefore {
		fmt.Println("buffering also reduced the observed disparity ✓")
	}
}
