// Quickstart: build the paper's Fig. 2 example graph, bound the time
// disparity of the sink task with Theorem 1 (P-diff) and Theorem 2
// (S-diff), and cross-check the bounds against a simulation.
package main

import (
	"fmt"
	"log"

	disparity "repro"
)

func main() {
	ms := disparity.Millisecond

	// The six-task cause-effect graph of Fig. 2: two sensors τ1, τ2 feed
	// τ3, which forks to τ4 and τ5; both join at τ6.
	g := disparity.NewGraph()
	ecu := g.AddECU("ecu0", disparity.Compute)
	t1 := g.AddTask(disparity.Task{Name: "t1", Period: 10 * ms, ECU: disparity.NoECU})
	t2 := g.AddTask(disparity.Task{Name: "t2", Period: 15 * ms, ECU: disparity.NoECU})
	t3 := g.AddTask(disparity.Task{Name: "t3", WCET: 2 * ms, BCET: 1 * ms, Period: 10 * ms, Prio: 0, ECU: ecu})
	t4 := g.AddTask(disparity.Task{Name: "t4", WCET: 3 * ms, BCET: 1 * ms, Period: 20 * ms, Prio: 1, ECU: ecu})
	t5 := g.AddTask(disparity.Task{Name: "t5", WCET: 4 * ms, BCET: 2 * ms, Period: 30 * ms, Prio: 2, ECU: ecu})
	t6 := g.AddTask(disparity.Task{Name: "t6", WCET: 5 * ms, BCET: 2 * ms, Period: 30 * ms, Prio: 3, ECU: ecu})
	for _, e := range [][2]disparity.TaskID{{t1, t3}, {t2, t3}, {t3, t4}, {t3, t5}, {t4, t6}, {t5, t6}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// Response times and chains.
	wcrt, ok := disparity.WCRT(g)
	fmt.Printf("schedulable: %v\n", ok)
	chains, err := disparity.EnumerateChains(g, t6, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chains ending at t6: %d\n", len(chains))
	for _, c := range chains {
		w, b, err := disparity.BackwardBounds(g, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s WCBT=%v BCBT=%v\n", c.Format(g), w, b)
	}
	fmt.Printf("R(t6) = %v\n", wcrt[t6])

	// Analytical disparity bounds.
	a, err := disparity.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	pd, err := a.Disparity(t6, disparity.PDiff, 0)
	if err != nil {
		log.Fatal(err)
	}
	sd, err := a.Disparity(t6, disparity.SDiff, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P-diff bound (Theorem 1): %v\n", pd.Bound)
	fmt.Printf("S-diff bound (Theorem 2): %v\n", sd.Bound)

	// Simulation: an achievable lower bound the analysis must dominate.
	var worst disparity.Time
	for seed := int64(0); seed < 5; seed++ {
		disparity.RandomOffsets(g, seed)
		res, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon: 10 * disparity.Second,
			Warmup:  disparity.Second,
			Exec:    disparity.ExecExtremes,
			Seed:    seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d := res.MaxDisparity[t6]; d > worst {
			worst = d
		}
	}
	fmt.Printf("max simulated disparity over 5 offset runs: %v\n", worst)
	if worst > pd.Bound || worst > sd.Bound {
		log.Fatal("BUG: simulation exceeded an analytical bound")
	}
	fmt.Println("simulation within both bounds ✓")
}
