// Perception: a realistic autonomous-driving pipeline in the spirit of
// the paper's Fig. 1 (the PerceptIn system from the RTSS 2021 industry
// challenge): camera and LiDAR sensors, per-sensor processing on separate
// ECUs, CAN-bus communication to a fusion ECU, and a planning/control
// tail. The program bounds the time disparity at the fusion and control
// tasks and checks a camera-vs-LiDAR synchronization threshold.
package main

import (
	"fmt"
	"log"

	disparity "repro"
)

// syncThreshold is the maximum camera/LiDAR timestamp skew the perception
// stack tolerates for object fusion.
const syncThreshold = 120 * disparity.Millisecond

func main() {
	ms := disparity.Millisecond

	g := disparity.NewGraph()
	camECU := g.AddECU("camera_ecu", disparity.Compute)
	lidarECU := g.AddECU("lidar_ecu", disparity.Compute)
	fusionECU := g.AddECU("fusion_ecu", disparity.Compute)

	// Sensors (stimuli): a 30 fps camera and a 10 Hz LiDAR.
	camera := g.AddTask(disparity.Task{Name: "camera", Period: 33 * ms, ECU: disparity.NoECU})
	lidar := g.AddTask(disparity.Task{Name: "lidar", Period: 100 * ms, ECU: disparity.NoECU})

	// Per-sensor processing.
	debayer := g.AddTask(disparity.Task{Name: "debayer", WCET: 6 * ms, BCET: 3 * ms, Period: 33 * ms, Prio: 0, ECU: camECU})
	detect := g.AddTask(disparity.Task{Name: "detect", WCET: 12 * ms, BCET: 6 * ms, Period: 33 * ms, Prio: 1, ECU: camECU})
	deskew := g.AddTask(disparity.Task{Name: "deskew", WCET: 15 * ms, BCET: 8 * ms, Period: 100 * ms, Prio: 0, ECU: lidarECU})
	cluster := g.AddTask(disparity.Task{Name: "cluster", WCET: 25 * ms, BCET: 10 * ms, Period: 100 * ms, Prio: 1, ECU: lidarECU})

	// Fusion, planning, control on the fusion ECU. Control gets the
	// highest priority and a 50 ms period: under NON-preemptive
	// scheduling it can still be blocked by one whole planning job
	// (20 ms), so a 10 ms control period would be unschedulable here.
	control := g.AddTask(disparity.Task{Name: "control", WCET: 2 * ms, BCET: 1 * ms, Period: 50 * ms, Prio: 0, ECU: fusionECU})
	fusion := g.AddTask(disparity.Task{Name: "fusion", WCET: 10 * ms, BCET: 5 * ms, Period: 100 * ms, Prio: 1, ECU: fusionECU})
	planning := g.AddTask(disparity.Task{Name: "planning", WCET: 20 * ms, BCET: 8 * ms, Period: 100 * ms, Prio: 2, ECU: fusionECU})

	edges := [][2]disparity.TaskID{
		{camera, debayer}, {debayer, detect}, {detect, fusion},
		{lidar, deskew}, {deskew, cluster}, {cluster, fusion},
		{fusion, planning}, {planning, control},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Cross-ECU hops become periodic CAN frames (§II-A of the paper),
	// with transmission times from the classical CAN timing analysis:
	// 8-byte standard frames on a 500 kbit/s bus.
	canBus := disparity.CANBus{Rate: disparity.Baud500k, Format: disparity.CANStandard, Payload: 8}
	_, msgs, err := canBus.Split(g, "can0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d CAN message tasks:\n", len(msgs))
	for _, m := range msgs {
		mt := g.Task(m.Task)
		fmt.Printf("  %s (frame time %v..%v)\n", mt.Name, mt.BCET, mt.WCET)
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	a, err := disparity.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []struct {
		name string
		id   disparity.TaskID
	}{{"fusion", fusion}, {"control", control}} {
		td, err := a.Disparity(target.id, disparity.SDiff, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nS-diff worst-case time disparity at %s: %v\n", target.name, td.Bound)
		worst := td.Pairs[td.ArgMax]
		fmt.Printf("  worst pair:\n    %s\n    %s\n", worst.Lambda.Format(g), worst.Nu.Format(g))
	}

	// Check the camera/LiDAR synchronization requirement at fusion.
	td, err := a.Disparity(fusion, disparity.SDiff, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsync threshold %v: ", syncThreshold)
	if td.Bound <= syncThreshold {
		fmt.Println("guaranteed ✓")
	} else {
		fmt.Println("NOT guaranteed — applying Algorithm 1")
		plan, _, err := a.OptimizeTask(fusion, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("buffer %s -> %s to capacity %d: bound %v -> %v\n",
			g.Task(plan.Edge.Src).Name, g.Task(plan.Edge.Dst).Name,
			plan.Cap, plan.Before, plan.After)
		if plan.After <= syncThreshold {
			fmt.Println("threshold met after buffering ✓")
		} else {
			fmt.Println("threshold still violated; a design change is needed")
		}
	}

	// Validate with a simulation of the (possibly buffered) system.
	disparity.RandomOffsets(g, 7)
	res, err := disparity.Simulate(g, disparity.SimConfig{
		Horizon: 20 * disparity.Second,
		Warmup:  2 * disparity.Second,
		Exec:    disparity.ExecExtremes,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated disparity: fusion=%v control=%v (%d jobs)\n",
		res.MaxDisparity[fusion], res.MaxDisparity[control], res.Jobs)
}
