// Command disparity-opt reduces the worst-case time disparity of a task
// by design: Algorithm 1's buffer sizing (optionally applied greedily
// across chain pairs) and/or release-offset search, writing the
// optimized graph back as JSON.
//
// Usage:
//
//	disparity-opt -graph g.json [-task fusion] [-buffers] [-greedy]
//	              [-offsets] [-out optimized.json]
package main

import (
	"fmt"
	"io"
	"os"

	disparity "repro"
	"repro/internal/cli"
	"repro/internal/offsetopt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-opt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	app := cli.New("disparity-opt")
	fs := app.FlagSet()
	graphPath := fs.String("graph", "", "path to the graph JSON (required)")
	taskName := fs.String("task", "", "task to optimize (default: the sink)")
	buffers := fs.Bool("buffers", true, "apply Algorithm 1 buffer sizing")
	greedy := fs.Bool("greedy", true, "apply Algorithm 1 greedily across pairs (else once)")
	offsets := fs.Bool("offsets", false, "also search release offsets (simulation-guided)")
	steps := fs.Int("offset-steps", 8, "offset candidates per task and round")
	rounds := fs.Int("offset-rounds", 3, "offset search rounds")
	maxChains := fs.Int("max-chains", 0, "cap on enumerated chains")
	out := fs.String("out", "", "write the optimized graph JSON here (default stdout)")
	if err := app.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Close()
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		return err
	}
	task, err := pickTask(g, *taskName)
	if err != nil {
		return err
	}

	a, err := disparity.Analyze(g)
	if err != nil {
		return err
	}
	before, err := a.Disparity(task, disparity.SDiff, *maxChains)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "S-diff before: %v\n", before.Bound)

	work := g
	if *buffers {
		if *greedy {
			res, err := a.OptimizeTaskGreedy(task, *maxChains, 0)
			if err != nil {
				return err
			}
			work = res.Graph
			for _, p := range res.Plans {
				fmt.Fprintf(os.Stderr, "buffer %s -> %s := %d (L=%v)\n",
					work.Task(p.Edge.Src).Name, work.Task(p.Edge.Dst).Name, p.Cap, p.L)
			}
			fmt.Fprintf(os.Stderr, "S-diff after buffers: %v\n", res.After)
		} else {
			plan, _, err := a.OptimizeTask(task, *maxChains)
			if err != nil {
				return err
			}
			work = g.Clone()
			if err := plan.Apply(work); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "buffer %s -> %s := %d (L=%v), bound %v -> %v\n",
				work.Task(plan.Edge.Src).Name, work.Task(plan.Edge.Dst).Name,
				plan.Cap, plan.L, plan.Before, plan.After)
		}
	}

	if *offsets {
		res, err := disparity.OptimizeOffsets(work, task, offsetopt.Config{
			Steps:  *steps,
			Rounds: *rounds,
			Exec:   disparity.ExecExtremes,
			Seeds:  2,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "offset search: achieved disparity %v -> %v (%d evaluations)\n",
			res.Before, res.After, res.Evaluations)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := work.WriteJSON(w); err != nil {
		return err
	}
	// Diagnostics go to stderr: stdout may BE the optimized graph.
	return app.Finish(os.Stderr, 0, nil)
}

func pickTask(g *disparity.Graph, name string) (disparity.TaskID, error) {
	if name != "" {
		t, ok := g.TaskByName(name)
		if !ok {
			return 0, fmt.Errorf("no task named %q", name)
		}
		return t.ID, nil
	}
	sinks := g.Sinks()
	if len(sinks) != 1 {
		return 0, fmt.Errorf("graph has %d sinks; pass -task to choose one", len(sinks))
	}
	return sinks[0], nil
}
