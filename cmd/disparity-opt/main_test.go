package main

import (
	"os"
	"path/filepath"
	"testing"

	disparity "repro"
	"repro/internal/model"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	g := model.Fig4Graph(30 * 1000 * 1000) // 30ms
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOptBuffers(t *testing.T) {
	path := writeFixture(t)
	out := filepath.Join(filepath.Dir(path), "opt.json")
	if err := run([]string{"-graph", path, "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 on Fig. 4 buffers t1 -> t3 at capacity 2.
	t1, _ := g.TaskByName("t1")
	t3, _ := g.TaskByName("t3")
	if g.Buffer(t1.ID, t3.ID) != 2 {
		t.Errorf("optimized buffer = %d, want 2", g.Buffer(t1.ID, t3.ID))
	}
}

func TestRunOptSinglePlanAndOffsets(t *testing.T) {
	path := writeFixture(t)
	out := filepath.Join(filepath.Dir(path), "opt.json")
	if err := run([]string{
		"-graph", path, "-out", out, "-greedy=false", "-offsets",
		"-offset-steps", "3", "-offset-rounds", "1",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunOptErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := run([]string{"-graph", "/nonexistent.json"}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeFixture(t)
	if err := run([]string{"-graph", path, "-task", "zzz"}); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRunOptObservabilityFlags(t *testing.T) {
	path := writeFixture(t)
	dir := filepath.Dir(path)
	out := filepath.Join(dir, "opt.json")
	profile := filepath.Join(dir, "cpu.out")
	if err := run([]string{"-graph", path, "-out", out, "-metrics", "-pprof", profile}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(profile)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Error("profile is empty")
	}
}
