package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	g := model.Fig2Graph()
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimWithTrace(t *testing.T) {
	path := writeFixture(t)
	tracePath := filepath.Join(filepath.Dir(path), "trace.csv")
	err := run([]string{
		"-graph", path, "-horizon", "500ms", "-warmup", "100ms",
		"-exec", "uniform", "-random-offsets", "-jobtrace", tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("empty trace")
	}
}

func TestExecModelSelection(t *testing.T) {
	for _, name := range []string{"wcet", "bcet", "uniform", "extremes"} {
		if _, err := execModel(name); err != nil {
			t.Errorf("execModel(%q): %v", name, err)
		}
	}
	if _, err := execModel("quantum"); err == nil {
		t.Error("unknown exec model accepted")
	}
}

func TestRunSimErrors(t *testing.T) {
	path := writeFixture(t)
	cases := [][]string{
		{},
		{"-graph", "/nonexistent.json"},
		{"-graph", path, "-horizon", "bogus"},
		{"-graph", path, "-warmup", "bogus"},
		{"-graph", path, "-exec", "bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunSimPlain(t *testing.T) {
	path := writeFixture(t)
	if err := run([]string{"-graph", path, "-horizon", "200ms"}); err != nil {
		t.Fatal(err)
	}
	_ = strings.TrimSpace
}

func TestRunSimGantt(t *testing.T) {
	path := writeFixture(t)
	svg := filepath.Join(filepath.Dir(path), "g.svg")
	if err := run([]string{"-graph", path, "-horizon", "300ms", "-gantt", svg, "-gantt-ascii"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG output missing")
	}
}

func TestRunSimObservabilityFlags(t *testing.T) {
	path := writeFixture(t)
	dir := filepath.Dir(path)
	runTrace := filepath.Join(dir, "run.trace.json")
	manifest := filepath.Join(dir, "run.manifest.json")
	err := run([]string{
		"-graph", path, "-horizon", "500ms", "-warmup", "100ms",
		"-trace", runTrace, "-manifest", manifest, "-metrics",
	})
	if err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(runTrace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &doc); err != nil {
		t.Fatalf("runtrace is not valid JSON: %v", err)
	}
	sawRun := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "sim.run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Error("runtrace missing sim.run span")
	}
	manifestData, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command string `json:"command"`
	}
	if err := json.Unmarshal(manifestData, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Command != "disparity-sim" {
		t.Errorf("manifest command = %q", m.Command)
	}
}
