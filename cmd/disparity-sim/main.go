// Command disparity-sim simulates a cause-effect graph (JSON) under the
// run-time semantics of the paper and reports observed maximum
// disparities per task, optionally exporting a job trace.
//
// Usage:
//
//	disparity-sim -graph g.json [-horizon 10s] [-exec extremes] [-seed 1]
//	              [-warmup 1s] [-random-offsets] [-jobtrace out.csv]
//	disparity-sim -graph g.json -paper         # the paper's full 10-minute horizon
//	disparity-sim -graph g.json -horizon auto  # transient + a few hyperperiods
//	disparity-sim -graph g.json -runs 50 -random-offsets -exec wcet
//
// -horizon auto derives the span from the graph itself: the transient
// prefix (release offsets plus warm-up) followed by a few full
// hyperperiod cycles of steady state. -runs N batches N simulations
// with fresh offsets and seeds through one shared engine (sim.Batch)
// and reports the maximum disparity over all runs. Deterministic
// periodic runs skip repeated steady-state cycles via jump-ahead;
// -no-jump forces full execution (results are identical either way).
//
// Observability (the shared flag block, see internal/cli; -trace is the
// Chrome span trace as in every other tool, -jobtrace the per-job CSV):
//
//	disparity-sim -graph g.json -metrics             # dump counters/timers
//	disparity-sim -graph g.json -pprof cpu.out       # write a CPU profile
//	disparity-sim -graph g.json -trace run.json      # Chrome trace (ui.perfetto.dev)
//	disparity-sim -graph g.json -telemetry :9090     # live /metrics + pprof
//	disparity-sim -graph g.json -manifest run.json   # per-run provenance
//	disparity-sim -graph g.json -explain out.json    # decision record (jump-ahead outcome)
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"sort"
	"strings"

	disparity "repro"
	"repro/internal/cli"
	"repro/internal/explain"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/timeu"
	"repro/internal/trace"
	"repro/internal/trace/span"
	"repro/internal/waters"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-sim:", err)
		os.Exit(1)
	}
}

func execModel(name string) (disparity.ExecModel, error) {
	switch name {
	case "wcet":
		return disparity.ExecWCET, nil
	case "bcet":
		return disparity.ExecBCET, nil
	case "uniform":
		return disparity.ExecUniform, nil
	case "extremes":
		return disparity.ExecExtremes, nil
	default:
		return nil, fmt.Errorf("unknown exec model %q (wcet|bcet|uniform|extremes)", name)
	}
}

func run(args []string) error {
	app := cli.New("disparity-sim")
	fs := app.FlagSet()
	graphPath := fs.String("graph", "", "path to the graph JSON (required)")
	horizonStr := fs.String("horizon", "10s", "simulated time span, or \"auto\" (transient + a few hyperperiods)")
	warmupStr := fs.String("warmup", "1s", "measurement warm-up")
	paper := fs.Bool("paper", false, "use the paper's full 10-minute horizon (overrides -horizon)")
	execName := fs.String("exec", "extremes", "execution-time model: wcet|bcet|uniform|extremes")
	randomOffsets := fs.Bool("random-offsets", false, "draw release offsets uniformly from [0, T)")
	runs := fs.Int("runs", 1, "batch this many runs through one engine; with -random-offsets each run draws fresh offsets")
	noJump := fs.Bool("no-jump", false, "disable steady-state jump-ahead (results are identical either way)")
	jobTracePath := fs.String("jobtrace", "", "write a per-job CSV trace")
	jobTraceLimit := fs.Int("jobtrace-limit", 100000, "max job-trace records")
	ganttPath := fs.String("gantt", "", "write an SVG Gantt chart of the first 200ms")
	ganttASCII := fs.Bool("gantt-ascii", false, "print an ASCII Gantt chart of the first 200ms")
	if err := app.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Close()
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1")
	}
	warmup, err := disparity.ParseTime(*warmupStr)
	if err != nil {
		return err
	}
	exec, err := execModel(*execName)
	if err != nil {
		return err
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		return err
	}
	seed := app.Seed()
	if *randomOffsets && *runs == 1 {
		disparity.RandomOffsets(g, seed)
	}
	horizon, err := resolveHorizon(*horizonStr, *paper, g, warmup, *randomOffsets && *runs > 1)
	if err != nil {
		return err
	}

	var track *span.Track
	if app.Tracer != nil {
		track = app.Tracer.Track("sim")
	}

	if *runs > 1 {
		if *jobTracePath != "" || *ganttPath != "" || *ganttASCII {
			return fmt.Errorf("-jobtrace and -gantt record a single run; drop them or -runs")
		}
		jobs, overruns, jumpCodes, lastJump, maxDisp, err := runBatch(g, sim.Config{
			Horizon:          horizon,
			Exec:             exec,
			Trace:            track,
			DisableJumpAhead: *noJump,
		}, warmup, seed, *runs, *randomOffsets, app.Explain)
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d × %v (%d jobs, %d overruns, exec=%s, seed=%d)\n",
			*runs, horizon, jobs, overruns, *execName, seed)
		engaged := jumpCodes["engaged"]
		fmt.Printf("jump-ahead: engaged on %d/%d runs%s\n", engaged, *runs, fallbackBreakdown(jumpCodes))
		app.Explain.Sim(explain.SimRecord{
			Label: "batch", Runs: *runs, Jobs: jobs, Jump: explain.JumpFrom(lastJump),
		})
		if err := printDisparities(g, func(id model.TaskID) timeu.Time { return maxDisp[id] }); err != nil {
			return err
		}
		return app.Finish(os.Stdout, seed, map[string]any{
			"graph":          *graphPath,
			"horizon_ns":     int64(horizon),
			"warmup_ns":      int64(warmup),
			"exec":           *execName,
			"random_offsets": *randomOffsets,
			"runs":           *runs,
			"jobs":           jobs,
			"overruns":       overruns,
		})
	}

	var observers []sim.Observer
	var rec *trace.Recorder
	if *jobTracePath != "" || *ganttPath != "" || *ganttASCII {
		rec = trace.NewRecorder()
		rec.Limit = *jobTraceLimit
		observers = append(observers, rec)
	}
	res, err := disparity.Simulate(g, disparity.SimConfig{
		Horizon:          horizon,
		Warmup:           warmup,
		Exec:             exec,
		Seed:             seed,
		Observers:        observers,
		Trace:            track,
		DisableJumpAhead: *noJump,
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulated %v (%d jobs, %d overruns, exec=%s, seed=%d)\n",
		horizon, res.Jobs, res.Overruns, *execName, seed)
	logJump(res.Jump)
	app.Explain.JumpRun(res.Jump.Code())
	app.Explain.Sim(explain.SimRecord{
		Label: "run", Runs: 1, Jobs: res.Jobs, Jump: explain.JumpFrom(res.Jump),
	})
	if err := printDisparities(g, func(id model.TaskID) timeu.Time { return res.MaxDisparity[id] }); err != nil {
		return err
	}

	if rec != nil && (*ganttPath != "" || *ganttASCII) {
		win := timeu.Min(horizon, 200*timeu.Millisecond)
		chart := gantt.New(g, rec.Records).Window(0, win)
		if *ganttASCII {
			if err := chart.WriteASCII(os.Stdout, 100); err != nil {
				return err
			}
		}
		if *ganttPath != "" {
			gf, err := os.Create(*ganttPath)
			if err != nil {
				return err
			}
			if err := chart.WriteSVG(gf); err != nil {
				gf.Close()
				return err
			}
			if err := gf.Close(); err != nil {
				return err
			}
			fmt.Printf("gantt: wrote %s\n", *ganttPath)
		}
	}

	if rec != nil && *jobTracePath != "" {
		tf, err := os.Create(*jobTracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("jobtrace: %d records written to %s (%d dropped)\n",
			len(rec.Records), *jobTracePath, rec.Dropped)
	}
	return app.Finish(os.Stdout, seed, map[string]any{
		"graph":          *graphPath,
		"horizon_ns":     int64(horizon),
		"warmup_ns":      int64(warmup),
		"exec":           *execName,
		"random_offsets": *randomOffsets,
		"jobs":           res.Jobs,
		"overruns":       res.Overruns,
	})
}

// autoCycles is how many full hyperperiod cycles of steady state
// -horizon auto simulates after the transient prefix. A deterministic
// periodic run repeats after one cycle (and jump-ahead skips the rest);
// a few extra cycles keep the auto horizon useful for random exec
// models too.
const autoCycles = 4

// resolveHorizon turns the -horizon flag into a time span. "auto"
// derives it from the graph: the transient prefix (release offsets plus
// warm-up) followed by autoCycles full hyperperiod cycles. When the
// batch draws fresh random offsets per run the concrete offsets are
// unknown here; each is below its task's period and therefore below the
// hyperperiod, which bounds the transient instead.
func resolveHorizon(s string, paper bool, g *disparity.Graph, warmup timeu.Time, randomPerRun bool) (timeu.Time, error) {
	if paper {
		// The paper's evaluation simulates 10 minutes per run; with the
		// pooled engine this is routine rather than a coffee break.
		return 10 * timeu.Minute, nil
	}
	if s != "auto" {
		return disparity.ParseTime(s)
	}
	hp, err := g.HyperperiodChecked(10 * timeu.Minute)
	if err != nil {
		return 0, fmt.Errorf("-horizon auto: %w", err)
	}
	var off timeu.Time
	if randomPerRun {
		off = hp
	} else {
		for i := 0; i < g.NumTasks(); i++ {
			off = timeu.Max(off, g.Task(model.TaskID(i)).Offset)
		}
	}
	h := off + warmup + autoCycles*hp
	fmt.Printf("horizon auto: %v (transient %v + %d × hyperperiod %v)\n",
		h, off+warmup, autoCycles, hp)
	return h, nil
}

// runBatch executes n variants through one shared engine: fresh
// disparity observers per run, fresh offsets when requested, and seeds
// drawn from one deterministic stream. It returns aggregate counters,
// the per-run jump-ahead outcome tally (keyed by reason code, with
// "engaged" counting the fast-path runs), the last run's jump stats,
// and the per-task maximum disparity over all runs.
func runBatch(g *disparity.Graph, base sim.Config, warmup timeu.Time, seed int64, n int, randomOffsets bool, rec *explain.Recorder) (jobs, overruns int64, jumpCodes map[string]int64, lastJump sim.JumpStats, maxDisp []timeu.Time, err error) {
	batch, err := sim.NewBatch(g, base)
	if err != nil {
		return 0, 0, nil, sim.JumpStats{}, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	maxDisp = make([]timeu.Time, g.NumTasks())
	jumpCodes = make(map[string]int64)
	var offsets []timeu.Time
	for run := 0; run < n; run++ {
		if randomOffsets {
			offsets = waters.DrawOffsets(g, rng, offsets[:0])
		}
		obs := sim.NewDisparityObserver(warmup)
		res, err := batch.Run(sim.BatchRun{
			Seed:      rng.Int63(),
			Offsets:   offsets,
			Observers: []sim.Observer{obs},
		})
		if err != nil {
			return 0, 0, nil, sim.JumpStats{}, nil, fmt.Errorf("run %d: %w", run, err)
		}
		jobs += res.Stats.Jobs
		overruns += res.Stats.Overruns
		jumpCodes[res.Jump.Code()]++
		rec.JumpRun(res.Jump.Code())
		lastJump = res.Jump
		for i := 0; i < g.NumTasks(); i++ {
			id := model.TaskID(i)
			maxDisp[id] = timeu.Max(maxDisp[id], obs.Max(id))
		}
	}
	return jobs, overruns, jumpCodes, lastJump, maxDisp, nil
}

// fallbackBreakdown renders the non-engaged jump outcomes of a batch
// (" (fallbacks: random-exec x3, ...)"), or "" when every run engaged.
func fallbackBreakdown(jumpCodes map[string]int64) string {
	codes := make([]string, 0, len(jumpCodes))
	for code := range jumpCodes {
		if code != "engaged" {
			codes = append(codes, code)
		}
	}
	if len(codes) == 0 {
		return ""
	}
	sort.Strings(codes)
	parts := make([]string, 0, len(codes))
	for _, code := range codes {
		parts = append(parts, fmt.Sprintf("%s x%d", code, jumpCodes[code]))
	}
	return " (fallbacks: " + strings.Join(parts, ", ") + ")"
}

// printDisparities writes the per-task maximum-disparity table.
func printDisparities(g *disparity.Graph, get func(model.TaskID) timeu.Time) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tmax disparity")
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		fmt.Fprintf(tw, "%s\t%v\n", g.Task(id).Name, get(id))
	}
	return tw.Flush()
}

// logJump reports which simulation mode a single run used.
func logJump(j disparity.JumpStats) {
	switch {
	case j.Engaged:
		fmt.Printf("jump-ahead: skipped %d × %v cycles (%v) after a %v transient\n",
			j.Skipped, j.Cycle, j.SkippedTime, j.Transient)
	case j.Eligible:
		fmt.Printf("jump-ahead: armed (hyperperiod %v) but no cycle repeated within the horizon\n",
			j.Hyperperiod)
	default:
		fmt.Printf("jump-ahead: off (%s)\n", j.Reason)
	}
}
