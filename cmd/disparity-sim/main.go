// Command disparity-sim simulates a cause-effect graph (JSON) under the
// run-time semantics of the paper and reports observed maximum
// disparities per task, optionally exporting a job trace.
//
// Usage:
//
//	disparity-sim -graph g.json [-horizon 10s] [-exec extremes] [-seed 1]
//	              [-warmup 1s] [-random-offsets] [-jobtrace out.csv]
//	disparity-sim -graph g.json -paper   # the paper's full 10-minute horizon
//
// Observability (the shared flag block, see internal/cli; -trace is the
// Chrome span trace as in every other tool, -jobtrace the per-job CSV):
//
//	disparity-sim -graph g.json -metrics             # dump counters/timers
//	disparity-sim -graph g.json -pprof cpu.out       # write a CPU profile
//	disparity-sim -graph g.json -trace run.json      # Chrome trace (ui.perfetto.dev)
//	disparity-sim -graph g.json -telemetry :9090     # live /metrics + pprof
//	disparity-sim -graph g.json -manifest run.json   # per-run provenance
//
// The historical spellings -runtrace (for -trace) and -trace-limit (for
// -jobtrace-limit) still work as deprecated aliases.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	disparity "repro"
	"repro/internal/cli"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/timeu"
	"repro/internal/trace"
	"repro/internal/trace/span"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-sim:", err)
		os.Exit(1)
	}
}

func execModel(name string) (disparity.ExecModel, error) {
	switch name {
	case "wcet":
		return disparity.ExecWCET, nil
	case "bcet":
		return disparity.ExecBCET, nil
	case "uniform":
		return disparity.ExecUniform, nil
	case "extremes":
		return disparity.ExecExtremes, nil
	default:
		return nil, fmt.Errorf("unknown exec model %q (wcet|bcet|uniform|extremes)", name)
	}
}

func run(args []string) error {
	app := cli.New("disparity-sim")
	fs := app.FlagSet()
	graphPath := fs.String("graph", "", "path to the graph JSON (required)")
	horizonStr := fs.String("horizon", "10s", "simulated time span")
	warmupStr := fs.String("warmup", "1s", "measurement warm-up")
	paper := fs.Bool("paper", false, "use the paper's full 10-minute horizon (overrides -horizon)")
	execName := fs.String("exec", "extremes", "execution-time model: wcet|bcet|uniform|extremes")
	randomOffsets := fs.Bool("random-offsets", false, "draw release offsets uniformly from [0, T)")
	jobTracePath := fs.String("jobtrace", "", "write a per-job CSV trace")
	jobTraceLimit := fs.Int("jobtrace-limit", 100000, "max job-trace records")
	ganttPath := fs.String("gantt", "", "write an SVG Gantt chart of the first 200ms")
	ganttASCII := fs.Bool("gantt-ascii", false, "print an ASCII Gantt chart of the first 200ms")
	if err := app.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Close()
	horizon, err := disparity.ParseTime(*horizonStr)
	if err != nil {
		return err
	}
	if *paper {
		// The paper's evaluation simulates 10 minutes per run; with the
		// pooled engine this is routine rather than a coffee break.
		horizon = 10 * timeu.Minute
	}
	warmup, err := disparity.ParseTime(*warmupStr)
	if err != nil {
		return err
	}
	exec, err := execModel(*execName)
	if err != nil {
		return err
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		return err
	}
	seed := app.Seed()
	if *randomOffsets {
		disparity.RandomOffsets(g, seed)
	}

	var observers []sim.Observer
	var rec *trace.Recorder
	if *jobTracePath != "" || *ganttPath != "" || *ganttASCII {
		rec = trace.NewRecorder()
		rec.Limit = *jobTraceLimit
		observers = append(observers, rec)
	}
	var track *span.Track
	if app.Tracer != nil {
		track = app.Tracer.Track("sim")
	}
	res, err := disparity.Simulate(g, disparity.SimConfig{
		Horizon:   horizon,
		Warmup:    warmup,
		Exec:      exec,
		Seed:      seed,
		Observers: observers,
		Trace:     track,
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulated %v (%d jobs, %d overruns, exec=%s, seed=%d)\n",
		horizon, res.Jobs, res.Overruns, *execName, seed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tmax disparity")
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		fmt.Fprintf(tw, "%s\t%v\n", g.Task(id).Name, res.MaxDisparity[id])
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if rec != nil && (*ganttPath != "" || *ganttASCII) {
		win := timeu.Min(horizon, 200*timeu.Millisecond)
		chart := gantt.New(g, rec.Records).Window(0, win)
		if *ganttASCII {
			if err := chart.WriteASCII(os.Stdout, 100); err != nil {
				return err
			}
		}
		if *ganttPath != "" {
			gf, err := os.Create(*ganttPath)
			if err != nil {
				return err
			}
			if err := chart.WriteSVG(gf); err != nil {
				gf.Close()
				return err
			}
			if err := gf.Close(); err != nil {
				return err
			}
			fmt.Printf("gantt: wrote %s\n", *ganttPath)
		}
	}

	if rec != nil && *jobTracePath != "" {
		tf, err := os.Create(*jobTracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("jobtrace: %d records written to %s (%d dropped)\n",
			len(rec.Records), *jobTracePath, rec.Dropped)
	}
	return app.Finish(os.Stdout, seed, map[string]any{
		"graph":          *graphPath,
		"horizon_ns":     int64(horizon),
		"warmup_ns":      int64(warmup),
		"exec":           *execName,
		"random_offsets": *randomOffsets,
		"jobs":           res.Jobs,
		"overruns":       res.Overruns,
	})
}
