// Command disparity-sim simulates a cause-effect graph (JSON) under the
// run-time semantics of the paper and reports observed maximum
// disparities per task, optionally exporting a job trace.
//
// Usage:
//
//	disparity-sim -graph g.json [-horizon 10s] [-exec extremes] [-seed 1]
//	              [-warmup 1s] [-random-offsets] [-trace out.csv]
//	disparity-sim -graph g.json -paper   # the paper's full 10-minute horizon
//
// Observability (-trace is the per-job CSV; -runtrace is the Chrome
// span trace):
//
//	disparity-sim -graph g.json -metrics             # dump counters/timers
//	disparity-sim -graph g.json -pprof cpu.out       # write a CPU profile
//	disparity-sim -graph g.json -runtrace run.json   # Chrome trace (ui.perfetto.dev)
//	disparity-sim -graph g.json -telemetry :9090     # live /metrics + pprof
//	disparity-sim -graph g.json -manifest run.json   # per-run provenance
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"text/tabwriter"

	disparity "repro"
	"repro/internal/gantt"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/timeu"
	"repro/internal/trace"
	"repro/internal/trace/span"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-sim:", err)
		os.Exit(1)
	}
}

func execModel(name string) (disparity.ExecModel, error) {
	switch name {
	case "wcet":
		return disparity.ExecWCET, nil
	case "bcet":
		return disparity.ExecBCET, nil
	case "uniform":
		return disparity.ExecUniform, nil
	case "extremes":
		return disparity.ExecExtremes, nil
	default:
		return nil, fmt.Errorf("unknown exec model %q (wcet|bcet|uniform|extremes)", name)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("disparity-sim", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "path to the graph JSON (required)")
	horizonStr := fs.String("horizon", "10s", "simulated time span")
	warmupStr := fs.String("warmup", "1s", "measurement warm-up")
	paper := fs.Bool("paper", false, "use the paper's full 10-minute horizon (overrides -horizon)")
	execName := fs.String("exec", "extremes", "execution-time model: wcet|bcet|uniform|extremes")
	seed := fs.Int64("seed", 1, "random seed")
	randomOffsets := fs.Bool("random-offsets", false, "draw release offsets uniformly from [0, T)")
	tracePath := fs.String("trace", "", "write a per-job CSV trace")
	traceLimit := fs.Int("trace-limit", 100000, "max trace records")
	ganttPath := fs.String("gantt", "", "write an SVG Gantt chart of the first 200ms")
	ganttASCII := fs.Bool("gantt-ascii", false, "print an ASCII Gantt chart of the first 200ms")
	dumpMetrics := fs.Bool("metrics", false, "dump internal counters and timers after the run")
	pprofPath := fs.String("pprof", "", "write a CPU profile of the run to this file")
	runTracePath := fs.String("runtrace", "", "write a Chrome trace-event JSON of the run (view in ui.perfetto.dev)")
	telemetryAddr := fs.String("telemetry", "", "serve live telemetry on this address (e.g. :9090): Prometheus /metrics, pprof")
	manifestPath := fs.String("manifest", "", "write a JSON run manifest (seed, config, stage-time breakdown) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	var manifest *telemetry.Manifest
	if *manifestPath != "" {
		manifest = telemetry.NewManifest("disparity-sim", args)
	}
	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *telemetryAddr != "" {
		srv := &telemetry.Server{}
		addr, err := srv.Start(*telemetryAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "disparity-sim: telemetry on http://%s\n", addr)
	}
	horizon, err := disparity.ParseTime(*horizonStr)
	if err != nil {
		return err
	}
	if *paper {
		// The paper's evaluation simulates 10 minutes per run; with the
		// pooled engine this is routine rather than a coffee break.
		horizon = 10 * timeu.Minute
	}
	warmup, err := disparity.ParseTime(*warmupStr)
	if err != nil {
		return err
	}
	exec, err := execModel(*execName)
	if err != nil {
		return err
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		return err
	}
	if *randomOffsets {
		disparity.RandomOffsets(g, *seed)
	}

	var observers []sim.Observer
	var rec *trace.Recorder
	if *tracePath != "" || *ganttPath != "" || *ganttASCII {
		rec = trace.NewRecorder()
		rec.Limit = *traceLimit
		observers = append(observers, rec)
	}
	var tracer *span.Tracer
	var track *span.Track
	if *runTracePath != "" {
		tracer = span.New()
		track = tracer.Track("sim")
	}
	res, err := disparity.Simulate(g, disparity.SimConfig{
		Horizon:   horizon,
		Warmup:    warmup,
		Exec:      exec,
		Seed:      *seed,
		Observers: observers,
		Trace:     track,
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulated %v (%d jobs, %d overruns, exec=%s, seed=%d)\n",
		horizon, res.Jobs, res.Overruns, *execName, *seed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tmax disparity")
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		fmt.Fprintf(tw, "%s\t%v\n", g.Task(id).Name, res.MaxDisparity[id])
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if rec != nil && (*ganttPath != "" || *ganttASCII) {
		win := timeu.Min(horizon, 200*timeu.Millisecond)
		chart := gantt.New(g, rec.Records).Window(0, win)
		if *ganttASCII {
			if err := chart.WriteASCII(os.Stdout, 100); err != nil {
				return err
			}
		}
		if *ganttPath != "" {
			gf, err := os.Create(*ganttPath)
			if err != nil {
				return err
			}
			if err := chart.WriteSVG(gf); err != nil {
				gf.Close()
				return err
			}
			if err := gf.Close(); err != nil {
				return err
			}
			fmt.Printf("gantt: wrote %s\n", *ganttPath)
		}
	}

	if rec != nil && *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d records written to %s (%d dropped)\n",
			len(rec.Records), *tracePath, rec.Dropped)
	}
	if tracer != nil {
		if err := tracer.WriteChromeFile(*runTracePath); err != nil {
			return err
		}
		fmt.Printf("runtrace: %d spans written to %s\n", tracer.SpanCount(), *runTracePath)
	}
	if *dumpMetrics {
		fmt.Println()
		fmt.Println("metrics:")
		if err := metrics.Fprint(os.Stdout); err != nil {
			return err
		}
	}
	if manifest != nil {
		manifest.Seed = *seed
		manifest.Config = map[string]any{
			"graph":          *graphPath,
			"horizon_ns":     int64(horizon),
			"warmup_ns":      int64(warmup),
			"exec":           *execName,
			"random_offsets": *randomOffsets,
			"jobs":           res.Jobs,
			"overruns":       res.Overruns,
		}
		manifest.Finish(nil)
		if err := manifest.WriteFile(*manifestPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "disparity-sim: manifest written to %s\n", *manifestPath)
	}
	return nil
}
