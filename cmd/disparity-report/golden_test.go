package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenReportFig2 pins the full Markdown report for the paper's
// Fig. 2 example — platform overview, chain latency bounds, every
// registered analytic disparity bound, and Algorithm 1's
// recommendation — as rendered to stdout.
func TestGoldenReportFig2(t *testing.T) {
	path := writeFixture(t)
	var buf bytes.Buffer
	if err := run([]string{"-graph", path, "-title", "Fig. 2 graph"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2_full_report", buf.String())
}
