// Command disparity-report renders a complete Markdown timing report for
// a cause-effect graph: platform and schedulability overview, per-chain
// backward-time and end-to-end latency bounds, worst-case time disparity
// per sink (every registered analytic bound), and Algorithm 1's buffer
// recommendation.
//
// Usage:
//
//	disparity-report -graph g.json [-task fusion] [-optimize] [-out report.md]
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	disparity "repro"
	"repro/internal/cli"
	"repro/internal/model"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-report:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	app := cli.New("disparity-report")
	fs := app.FlagSet()
	graphPath := fs.String("graph", "", "path to the graph JSON (required)")
	taskName := fs.String("task", "", "task to analyze (default: every sink)")
	optimize := fs.Bool("optimize", true, "include Algorithm 1's recommendation")
	maxChains := fs.Int("max-chains", 0, "cap on enumerated chains (0 = default)")
	out := fs.String("out", "", "output path (default stdout)")
	title := fs.String("title", "", "report title")
	if err := app.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Close()
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		return err
	}

	app.Explain.SetGraph(filepath.Base(*graphPath), g.NumTasks(), g.NumEdges())
	opts := report.Options{Optimize: *optimize, MaxChains: *maxChains, Title: *title, Explain: app.Explain}
	if *taskName != "" {
		t, ok := g.TaskByName(*taskName)
		if !ok {
			return fmt.Errorf("no task named %q", *taskName)
		}
		opts.Tasks = []model.TaskID{t.ID}
	}

	w := stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := report.Write(w, g, opts); err != nil {
		return err
	}
	// The metrics dump goes to stderr: stdout may BE the report.
	return app.Finish(os.Stderr, 0, nil)
}
