package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	g := model.Fig2Graph()
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	path := writeFixture(t)
	out := filepath.Join(filepath.Dir(path), "report.md")
	if err := run([]string{"-graph", path, "-out", out, "-title", "T"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# T", "## Task t6", "S-diff"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunReportNamedTask(t *testing.T) {
	path := writeFixture(t)
	if err := run([]string{"-graph", path, "-task", "t5", "-out", filepath.Join(filepath.Dir(path), "r.md")}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-task", "zz"}, io.Discard); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRunReportErrors(t *testing.T) {
	if err := run([]string{}, io.Discard); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := run([]string{"-graph", "/nonexistent.json"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}
