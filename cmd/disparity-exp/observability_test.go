package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestRunWithTraceAndManifest drives a tiny sweep with -trace and
// -manifest and checks both artifacts are valid JSON with the expected
// shape.
func TestRunWithTraceAndManifest(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	manifestPath := filepath.Join(dir, "run.manifest.json")
	err := run(tinyArgs("-fig", "6a", "-trace", tracePath, "-manifest", manifestPath, "-seed", "3"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			meta++
		}
	}
	if spans == 0 || meta == 0 {
		t.Errorf("trace has %d spans and %d metadata events, want both > 0", spans, meta)
	}

	manifestData, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command   string `json:"command"`
		GoVersion string `json:"go_version"`
		Seed      int64  `json:"seed"`
		Stages    []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(manifestData, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Command != "disparity-exp" || m.GoVersion == "" || m.Seed != 3 {
		t.Errorf("manifest header = %+v", m)
	}
	found := false
	for _, st := range m.Stages {
		if st.Name == "exp.stage.analysis" && st.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("manifest stages missing exp.stage.analysis: %+v", m.Stages)
	}
}

// TestRunWithTelemetry starts the sweep with a live telemetry endpoint
// and scrapes /metrics while the process is still in run().
func TestRunWithTelemetry(t *testing.T) {
	// The server address is printed to stderr; bind to a fixed loopback
	// port chosen by the kernel is not retrievable here, so use a port
	// file-free approach: run with :0 would lose the address. Instead
	// bind to a fixed high port and skip if taken.
	const addr = "127.0.0.1:39841"
	if err := run(tinyArgs("-fig", "6a", "-telemetry", addr), io.Discard); err != nil {
		t.Fatal(err)
	}
	// After run() returns the server is closed; the test above exercises
	// the wiring end-to-end (Start, sweep with Sink, deferred Close).
	// Scrape failure after close is the expected state:
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry server still up after run() returned")
	}
}
