package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func tinyArgs(extra ...string) []string {
	base := []string{
		"-points", "5,8", "-graphs", "1", "-offsets", "1",
		"-horizon", "300ms", "-quiet",
	}
	return append(base, extra...)
}

func TestRunEachFigure(t *testing.T) {
	for _, fig := range []string{"6a", "6b", "6c", "6d"} {
		if err := run(tinyArgs("-fig", fig), io.Discard); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunAblations(t *testing.T) {
	if err := run(tinyArgs("-fig", "ablation-backward"), io.Discard); err != nil {
		t.Errorf("ablation-backward: %v", err)
	}
	if err := run([]string{"-fig", "ablation-tail", "-graphs", "1", "-offsets", "1", "-horizon", "300ms", "-quiet"}, io.Discard); err != nil {
		t.Errorf("ablation-tail: %v", err)
	}
	if err := run(tinyArgs("-fig", "ablation-exec"), io.Discard); err != nil {
		t.Errorf("ablation-exec: %v", err)
	}
	if err := run(tinyArgs("-fig", "latency"), io.Discard); err != nil {
		t.Errorf("latency: %v", err)
	}
}

func TestRunAllWithCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	if err := run(tinyArgs("-fig", "all", "-csv", csv, "-seed", "9"), io.Discard); err != nil {
		t.Fatal(err)
	}
	// Four panels: suffixed files.
	matches, err := filepath.Glob(filepath.Join(dir, "out.*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Errorf("CSV files = %v, want 4", matches)
	}
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil || len(data) == 0 {
			t.Errorf("empty CSV %s (%v)", m, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "bogus"}, io.Discard); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-points", "x,y"}, io.Discard); err == nil {
		t.Error("bad points accepted")
	}
	if err := run([]string{"-horizon", "bogus"}, io.Discard); err == nil {
		t.Error("bad horizon accepted")
	}
}
