package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenFig6a pins the CLI's stdout for a fixed tiny configuration:
// flag parsing, sweep determinism, and table rendering all in one.
func TestGoldenFig6a(t *testing.T) {
	var buf bytes.Buffer
	if err := run(tinyArgs("-fig", "6a", "-seed", "1"), &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6a", buf.String())
}

// TestGoldenBounds pins the analysis-only sweep's output.
func TestGoldenBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := run(tinyArgs("-fig", "bounds", "-seed", "1"), &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bounds", buf.String())
}

// TestGoldenCacheIdentical asserts the user-visible cache contract: the
// -no-cache output is byte-for-byte the golden (cached) output.
func TestGoldenCacheIdentical(t *testing.T) {
	for _, fig := range []string{"6a", "bounds"} {
		var cached, uncached bytes.Buffer
		if err := run(tinyArgs("-fig", fig, "-seed", "1"), &cached); err != nil {
			t.Fatal(err)
		}
		if err := run(tinyArgs("-fig", fig, "-seed", "1", "-no-cache"), &uncached); err != nil {
			t.Fatal(err)
		}
		if cached.String() != uncached.String() {
			t.Errorf("-fig %s: -no-cache output differs from cached output", fig)
		}
	}
}

// TestMetricsFlag checks the default-off metrics dump: absent without
// the flag, and carrying the expected counter names with it. Values are
// not pinned (timers are wall-clock nondeterministic).
func TestMetricsFlag(t *testing.T) {
	var plain bytes.Buffer
	if err := run(tinyArgs("-fig", "6a", "-seed", "1"), &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "metrics:") {
		t.Error("metrics dumped without -metrics")
	}
	var buf bytes.Buffer
	if err := run(tinyArgs("-fig", "6a", "-seed", "1", "-metrics"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"metrics:",
		"exp.graphs.generated",
		"sched.analyses",
		"sched.fixedpoint.iterations",
		"cache.sched.misses",
		"cache.backward.hits",
		"chains.enumerated",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics dump missing %q", name)
		}
	}
}

// TestPprofFlag checks that -pprof writes a non-empty profile.
func TestPprofFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	if err := run(tinyArgs("-fig", "bounds", "-seed", "1", "-pprof", path), new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty CPU profile")
	}
}
