// Command disparity-exp reproduces the paper's evaluation (Fig. 6): it
// runs the synthetic experiments and prints the same series the paper
// plots, as aligned tables and optionally CSV.
//
// Usage:
//
//	disparity-exp -fig 6a            # Sim / P-diff / S-diff vs #tasks
//	disparity-exp -fig 6b            # incremental ratios of (a)
//	disparity-exp -fig 6c            # two-chain buffering experiment
//	disparity-exp -fig 6d            # incremental ratios of (c)
//	disparity-exp -fig bounds        # analysis-only bounds (no simulation)
//	disparity-exp -fig fleet         # fleet-scale zonal sweep (10^3 tasks)
//	disparity-exp -fig latency       # MRT/MRRT/MDA/MRDA bounds vs simulation
//	disparity-exp -fig all           # everything
//	disparity-exp -fig 6a -paper     # the paper's full 10-minute horizons
//	disparity-exp -fig 6a -csv out.csv
//
// Ablations of the reproduction's design choices:
//
//	disparity-exp -fig ablation-backward   # Lemma 4/5 vs baseline bounds
//	disparity-exp -fig ablation-tail       # shared-tail length sweep
//	disparity-exp -fig ablation-exec       # execution-time models vs bound
//
// Observability (the shared flag block, see internal/cli):
//
//	disparity-exp -fig 6a -metrics           # dump internal counters/timers
//	disparity-exp -fig 6a -pprof cpu.out     # write a CPU profile
//	disparity-exp -fig 6a -no-cache          # disable the memoization layer
//	disparity-exp -fig 6a -no-jump           # disable steady-state jump-ahead
//	disparity-exp -fig 6a -trace run.json    # Chrome trace (ui.perfetto.dev)
//	disparity-exp -fig 6a -telemetry :9090   # live /metrics, /progress, pprof
//	disparity-exp -fig 6a -manifest run.json # per-run provenance manifest
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/timeu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-exp:", err)
		os.Exit(1)
	}
}

// sweepCmd is one -fig value: how to run it and which point overrides
// it applies. forcePoints always replaces cfg.Points; defaultPoints
// only when the user gave no -points. ecus overrides cfg.ECUs when
// non-zero (the single-ECU ablations, where Lemma 4's refinement over
// the scheduler-agnostic baseline applies to every hop).
type sweepCmd struct {
	run           func(exp.Config) (*exp.Table, error)
	forcePoints   []int
	defaultPoints []int
	ecus          int
}

var sweeps = map[string]sweepCmd{
	"6a":                 {run: exp.Fig6a},
	"6b":                 {run: exp.Fig6b},
	"6c":                 {run: exp.Fig6c},
	"6d":                 {run: exp.Fig6d},
	"bounds":             {run: exp.BoundsSweep},
	"ablation-backward":  {run: exp.AblationBackward},
	"ablation-tail":      {run: tailSweep, forcePoints: []int{0, 1, 2, 3, 4, 6, 8}},
	"ablation-exec":      {run: exp.AblationExec},
	"ablation-semantics": {run: exp.AblationSemantics},
	"ablation-utilization": {
		run:           exp.AblationUtilization,
		defaultPoints: []int{1, 5, 10, 20, 40, 60},
		ecus:          1,
	},
	"ablation-priority": {
		run:           exp.AblationPriority,
		defaultPoints: []int{1, 10, 30, 50},
		ecus:          1,
	},
	"fleet":                {run: exp.FleetSweep, defaultPoints: []int{2, 4, 8, 12}},
	"ablation-greedy":      {run: exp.AblationGreedyBuffers},
	"ablation-adversarial": {run: exp.AblationAdversarial, defaultPoints: []int{5, 10, 15}},
	"latency":              {run: exp.LatencySweep},
}

func tailSweep(cfg exp.Config) (*exp.Table, error) { return exp.AblationTail(cfg, 20) }

func run(args []string, stdout io.Writer) error {
	app := cli.New("disparity-exp")
	fs := app.FlagSet()
	fig := fs.String("fig", "all", "which panel: 6a|6b|6c|6d|bounds|all")
	paper := fs.Bool("paper", false, "use the paper's full scale (10-minute horizons)")
	horizonStr := fs.String("horizon", "", "override simulation horizon (e.g. 30s)")
	graphs := fs.Int("graphs", 0, "override graphs per point")
	offsets := fs.Int("offsets", 0, "override offset runs per graph")
	points := fs.String("points", "", "override X values, comma-separated")
	csvPath := fs.String("csv", "", "also write the tables as CSV (one file per panel, suffixing the name)")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	progress := fs.Bool("progress", false, "log per-graph progress to stderr")
	noCache := fs.Bool("no-cache", false, "disable the per-graph analysis cache (results are identical; for benchmarking)")
	noJump := fs.Bool("no-jump", false, "disable the simulator's steady-state jump-ahead (results are identical; for benchmarking)")
	if err := app.Parse(args); err != nil {
		return err
	}

	cfg := exp.Defaults()
	if *paper {
		cfg = exp.PaperScale()
	}
	if *horizonStr != "" {
		h, err := timeu.Parse(*horizonStr)
		if err != nil {
			return err
		}
		cfg.Horizon = h
	}
	if *graphs > 0 {
		cfg.GraphsPerPoint = *graphs
	}
	if *offsets > 0 {
		cfg.OffsetsPerGraph = *offsets
	}
	if *points != "" {
		var ps []int
		for _, p := range strings.Split(*points, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
				return fmt.Errorf("bad -points %q: %w", *points, err)
			}
			ps = append(ps, v)
		}
		cfg.Points = ps
	}
	if s := app.Seed(); s != 0 {
		cfg.Seed = s
	}
	cfg.Workers = app.Workers()
	cfg.DisableCache = *noCache
	cfg.DisableJumpAhead = *noJump
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *progress {
		cfg.Progress = os.Stderr
	}

	if err := app.Start(); err != nil {
		return err
	}
	defer app.Close()
	cfg.Tracer = app.Tracer
	if app.Tracker != nil {
		cfg.Sink = app.Tracker
	}

	var tables []*exp.Table
	switch {
	case *fig == "all":
		// The (c)/(d) experiment uses shorter chains as its X axis.
		abs, ratio, err := exp.Fig6ab(cfg)
		if err != nil {
			return err
		}
		ccfg := cfg
		ccfg.Points = []int{5, 10, 15, 20, 25, 30}
		cAbs, cRatio, err := exp.Fig6cd(ccfg)
		if err != nil {
			return err
		}
		tables = append(tables, abs, ratio, cAbs, cRatio)
	default:
		cmd, ok := sweeps[*fig]
		if !ok {
			return fmt.Errorf("unknown -fig %q", *fig)
		}
		scfg := cfg
		if cmd.forcePoints != nil {
			scfg.Points = cmd.forcePoints
		} else if cmd.defaultPoints != nil && *points == "" {
			scfg.Points = cmd.defaultPoints
		}
		if cmd.ecus != 0 {
			scfg.ECUs = cmd.ecus
		}
		t, err := cmd.run(scfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if err := t.WriteText(stdout); err != nil {
			return err
		}
		if *csvPath != "" {
			name := *csvPath
			if len(tables) > 1 {
				name = fmt.Sprintf("%s.%d.csv", strings.TrimSuffix(name, ".csv"), i)
			}
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return app.Finish(stdout, cfg.Seed, map[string]any{
		"fig":               *fig,
		"points":            cfg.Points,
		"graphs_per_point":  cfg.GraphsPerPoint,
		"offsets_per_graph": cfg.OffsetsPerGraph,
		"horizon_ns":        int64(cfg.Horizon),
		"warmup_ns":         int64(cfg.Warmup),
		"ecus":              cfg.ECUs,
		"workers":           cfg.Workers,
		"max_chains":        cfg.MaxChains,
		"cache_disabled":    cfg.DisableCache,
		"jump_disabled":     cfg.DisableJumpAhead,
	})
}
