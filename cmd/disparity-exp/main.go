// Command disparity-exp reproduces the paper's evaluation (Fig. 6): it
// runs the synthetic experiments and prints the same series the paper
// plots, as aligned tables and optionally CSV.
//
// Usage:
//
//	disparity-exp -fig 6a            # Sim / P-diff / S-diff vs #tasks
//	disparity-exp -fig 6b            # incremental ratios of (a)
//	disparity-exp -fig 6c            # two-chain buffering experiment
//	disparity-exp -fig 6d            # incremental ratios of (c)
//	disparity-exp -fig bounds        # analysis-only bounds (no simulation)
//	disparity-exp -fig all           # everything
//	disparity-exp -fig 6a -paper     # the paper's full 10-minute horizons
//	disparity-exp -fig 6a -csv out.csv
//
// Ablations of the reproduction's design choices:
//
//	disparity-exp -fig ablation-backward   # Lemma 4/5 vs baseline bounds
//	disparity-exp -fig ablation-tail       # shared-tail length sweep
//	disparity-exp -fig ablation-exec       # execution-time models vs bound
//
// Observability:
//
//	disparity-exp -fig 6a -metrics           # dump internal counters/timers
//	disparity-exp -fig 6a -pprof cpu.out     # write a CPU profile
//	disparity-exp -fig 6a -no-cache          # disable the memoization layer
//	disparity-exp -fig 6a -trace run.json    # Chrome trace (ui.perfetto.dev)
//	disparity-exp -fig 6a -telemetry :9090   # live /metrics, /progress, pprof
//	disparity-exp -fig 6a -manifest run.json # per-run provenance manifest
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/timeu"
	"repro/internal/trace/span"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-exp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("disparity-exp", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which panel: 6a|6b|6c|6d|bounds|all")
	paper := fs.Bool("paper", false, "use the paper's full scale (10-minute horizons)")
	horizonStr := fs.String("horizon", "", "override simulation horizon (e.g. 30s)")
	graphs := fs.Int("graphs", 0, "override graphs per point")
	offsets := fs.Int("offsets", 0, "override offset runs per graph")
	points := fs.String("points", "", "override X values, comma-separated")
	seed := fs.Int64("seed", 0, "override random seed")
	workers := fs.Int("workers", 0, "parallel graph evaluations (0 = all cores)")
	csvPath := fs.String("csv", "", "also write the tables as CSV (one file per panel, suffixing the name)")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	progress := fs.Bool("progress", false, "log per-graph progress to stderr")
	noCache := fs.Bool("no-cache", false, "disable the per-graph analysis cache (results are identical; for benchmarking)")
	dumpMetrics := fs.Bool("metrics", false, "dump internal counters and timers after the run")
	pprofPath := fs.String("pprof", "", "write a CPU profile of the run to this file")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the sweep (view in ui.perfetto.dev)")
	telemetryAddr := fs.String("telemetry", "", "serve live telemetry on this address (e.g. :9090): Prometheus /metrics, /progress JSON, pprof")
	manifestPath := fs.String("manifest", "", "write a JSON run manifest (seed, config, stage-time breakdown) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var manifest *telemetry.Manifest
	if *manifestPath != "" {
		manifest = telemetry.NewManifest("disparity-exp", args)
	}

	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := exp.Defaults()
	if *paper {
		cfg = exp.PaperScale()
	}
	if *horizonStr != "" {
		h, err := timeu.Parse(*horizonStr)
		if err != nil {
			return err
		}
		cfg.Horizon = h
	}
	if *graphs > 0 {
		cfg.GraphsPerPoint = *graphs
	}
	if *offsets > 0 {
		cfg.OffsetsPerGraph = *offsets
	}
	if *points != "" {
		var ps []int
		for _, p := range strings.Split(*points, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
				return fmt.Errorf("bad -points %q: %w", *points, err)
			}
			ps = append(ps, v)
		}
		cfg.Points = ps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	cfg.DisableCache = *noCache
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *tracePath != "" {
		cfg.Tracer = span.New()
	}
	if *telemetryAddr != "" {
		tracker := telemetry.NewTracker()
		tracker.Jobs = metrics.C("exp.sim.jobs").Load
		cfg.Sink = tracker
		srv := &telemetry.Server{Tracker: tracker}
		addr, err := srv.Start(*telemetryAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "disparity-exp: telemetry on http://%s\n", addr)
	}

	var tables []*exp.Table
	switch *fig {
	case "6a":
		t, err := exp.Fig6a(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "6b":
		t, err := exp.Fig6b(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "6c":
		t, err := exp.Fig6c(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "6d":
		t, err := exp.Fig6d(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "bounds":
		t, err := exp.BoundsSweep(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-backward":
		t, err := exp.AblationBackward(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-tail":
		acfg := cfg
		acfg.Points = []int{0, 1, 2, 3, 4, 6, 8}
		t, err := exp.AblationTail(acfg, 20)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-exec":
		t, err := exp.AblationExec(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-semantics":
		t, err := exp.AblationSemantics(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-utilization":
		ucfg := cfg
		if *points == "" {
			ucfg.Points = []int{1, 5, 10, 20, 40, 60}
		}
		// A single ECU makes every hop same-ECU, where Lemma 4's
		// refinement over the scheduler-agnostic baseline applies.
		ucfg.ECUs = 1
		t, err := exp.AblationUtilization(ucfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-priority":
		pcfg := cfg
		if *points == "" {
			pcfg.Points = []int{1, 10, 30, 50}
		}
		pcfg.ECUs = 1
		t, err := exp.AblationPriority(pcfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-greedy":
		t, err := exp.AblationGreedyBuffers(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "ablation-adversarial":
		acfg := cfg
		if *points == "" {
			acfg.Points = []int{5, 10, 15}
		}
		t, err := exp.AblationAdversarial(acfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "all":
		// The (c)/(d) experiment uses shorter chains as its X axis.
		abs, ratio, err := exp.Fig6ab(cfg)
		if err != nil {
			return err
		}
		ccfg := cfg
		ccfg.Points = []int{5, 10, 15, 20, 25, 30}
		cAbs, cRatio, err := exp.Fig6cd(ccfg)
		if err != nil {
			return err
		}
		tables = append(tables, abs, ratio, cAbs, cRatio)
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if err := t.WriteText(stdout); err != nil {
			return err
		}
		if *csvPath != "" {
			name := *csvPath
			if len(tables) > 1 {
				name = fmt.Sprintf("%s.%d.csv", strings.TrimSuffix(name, ".csv"), i)
			}
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *dumpMetrics {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "metrics:")
		if err := metrics.Fprint(stdout); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := cfg.Tracer.WriteChromeFile(*tracePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "disparity-exp: trace with %d spans written to %s\n",
			cfg.Tracer.SpanCount(), *tracePath)
	}
	if manifest != nil {
		manifest.Seed = cfg.Seed
		manifest.Config = map[string]any{
			"fig":               *fig,
			"points":            cfg.Points,
			"graphs_per_point":  cfg.GraphsPerPoint,
			"offsets_per_graph": cfg.OffsetsPerGraph,
			"horizon_ns":        int64(cfg.Horizon),
			"warmup_ns":         int64(cfg.Warmup),
			"ecus":              cfg.ECUs,
			"workers":           cfg.Workers,
			"max_chains":        cfg.MaxChains,
			"cache_disabled":    cfg.DisableCache,
		}
		manifest.Finish(nil)
		if err := manifest.WriteFile(*manifestPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "disparity-exp: manifest written to %s\n", *manifestPath)
	}
	return nil
}
