// Command disparity-gen generates random WATERS-parameterized
// cause-effect graphs in the topologies of the paper's evaluation and
// writes them as JSON.
//
// Usage:
//
//	disparity-gen -topology gnm -n 20 -m 40 [-ecus 4] [-seed 1] -out g.json
//	disparity-gen -topology twochains -n 10 -out g.json
//	disparity-gen -topology layered -layers 3,4,2 -fanout 2 -out g.json
//	disparity-gen -topology automotive -sensors 3 -depth 2 -tail 2 -out g.json
//	disparity-gen -topology fleet -zones 8 -zone-ecus 4 -pipes 9 -depth 6 -tail 2 -out g.json
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	disparity "repro"
	"repro/internal/cli"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	app := cli.New("disparity-gen")
	fs := app.FlagSet()
	topology := fs.String("topology", "gnm", "gnm | twochains | layered | automotive | fleet")
	n := fs.Int("n", 15, "tasks (gnm) or per-chain tasks (twochains)")
	m := fs.Int("m", 0, "edges for gnm (default 2n)")
	layers := fs.String("layers", "3,4,2", "layer widths for layered")
	fanout := fs.Int("fanout", 2, "per-task fanout for layered")
	sensors := fs.Int("sensors", 3, "sensor pipelines for automotive")
	depth := fs.Int("depth", 2, "per-sensor processing depth for automotive")
	tail := fs.Int("tail", 2, "shared tail length for automotive")
	zonal := fs.Bool("zonal", true, "zonal ECU architecture for automotive")
	zones := fs.Int("zones", 8, "vehicle zones for fleet")
	zoneECUs := fs.Int("zone-ecus", 4, "compute ECUs per zone for fleet")
	pipes := fs.Int("pipes", 9, "sensor pipelines per ECU for fleet")
	ecus := fs.Int("ecus", 4, "number of compute ECUs")
	out := fs.String("out", "", "output path (default stdout)")
	requireSched := fs.Bool("schedulable", true, "retry generation until the graph is NP-FP schedulable")
	attempts := fs.Int("attempts", 100, "max generation attempts when -schedulable")
	if err := app.Parse(args); err != nil {
		return err
	}
	if *m == 0 {
		*m = 2 * *n
	}
	seed := app.Seed()

	gen := func(seed int64) (*disparity.Graph, error) {
		cfg := disparity.GenConfig{ECUs: *ecus, Seed: seed}
		switch *topology {
		case "gnm":
			return disparity.GenerateGNM(*n, *m, cfg)
		case "twochains":
			g, _, _, err := disparity.GenerateTwoChains(*n, cfg)
			return g, err
		case "layered":
			widths, err := parseInts(*layers)
			if err != nil {
				return nil, err
			}
			return disparity.GenerateLayered(widths, *fanout, cfg)
		case "automotive":
			g, _, err := disparity.GenerateAutomotive(disparity.AutomotiveConfig{
				Sensors: *sensors, ProcDepth: *depth, TailLen: *tail, ZoneECUs: *zonal,
			}, cfg)
			return g, err
		case "fleet":
			g, _, err := disparity.GenerateFleet(disparity.FleetConfig{
				Zones: *zones, ECUsPerZone: *zoneECUs, PipesPerECU: *pipes,
				ProcDepth: *depth, TailLen: *tail,
			}, cfg)
			return g, err
		default:
			return nil, fmt.Errorf("unknown topology %q", *topology)
		}
	}

	var g *disparity.Graph
	var err error
	for i := 0; i < *attempts; i++ {
		g, err = gen(seed + int64(i))
		if err != nil {
			return err
		}
		if !*requireSched {
			break
		}
		if res := sched.Analyze(g, sched.NonPreemptiveFP); res.Schedulable {
			break
		}
		g = nil
	}
	if g == nil {
		return fmt.Errorf("no schedulable graph found in %d attempts", *attempts)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteJSON(w)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
