package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// The generator is deterministic for a fixed -seed; these goldens pin
// the exact JSON each topology emits so refactors of the generation
// pipeline (WATERS sampling, priority assignment, schedulability
// retry loop) cannot silently shift the stream.
func TestGoldenGenTopologies(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"gnm_n12_seed3", []string{"-topology", "gnm", "-n", "12", "-seed", "3"}},
		{"twochains_n4_seed1", []string{"-topology", "twochains", "-n", "4", "-seed", "1"}},
		{"layered_232_seed1", []string{"-topology", "layered", "-layers", "2,3,2", "-fanout", "2", "-seed", "1"}},
		{"automotive_seed1", []string{"-topology", "automotive", "-seed", "1"}},
		{"fleet_small_seed1", []string{"-topology", "fleet", "-zones", "2", "-zone-ecus", "2", "-pipes", "2", "-depth", "2", "-tail", "1", "-seed", "1"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(c.args, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, buf.String())
		})
	}
}
