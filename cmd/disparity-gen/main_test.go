package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	disparity "repro"
)

func TestRunGeneratesValidGraph(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.json")
	if err := run([]string{"-topology", "gnm", "-n", "12", "-seed", "3", "-out", out}, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 12 {
		t.Errorf("tasks = %d, want 12", g.NumTasks())
	}
	// -schedulable default: the written graph passes the analysis.
	if _, err := disparity.Analyze(g); err != nil {
		t.Errorf("generated graph not schedulable: %v", err)
	}
}

func TestRunTopologies(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-topology", "twochains", "-n", "4", "-out", filepath.Join(dir, "a.json")},
		{"-topology", "layered", "-layers", "2,3,2", "-fanout", "2", "-out", filepath.Join(dir, "b.json")},
	} {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-topology", "bogus"},
		{"-topology", "layered", "-layers", "x,y"},
		{"-topology", "gnm", "-n", "1"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad input accepted")
	}
}

func TestRunAutomotive(t *testing.T) {
	out := filepath.Join(t.TempDir(), "a.json")
	if err := run([]string{"-topology", "automotive", "-out", out}, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TaskByName("fusion"); !ok {
		t.Error("automotive graph missing fusion task")
	}
}
