package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	disparity "repro"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenAnalyzeFig2 pins the full report for the paper's Fig. 2
// example: schedulability table, per-chain backward bounds, both
// disparity methods with the pair breakdown, and Algorithm 1's plan.
func TestGoldenAnalyzeFig2(t *testing.T) {
	path := writeFixture(t)
	var buf bytes.Buffer
	if err := run([]string{"-graph", path, "-pairs", "-optimize"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2_report", buf.String())
}

// TestGoldenExplainWaters pins the -explain decision record for a
// WATERS-parameterized automotive workload: per-layer cache ratios,
// prune ratio, truncation status, per-method argmax pairs, and the
// worst-case witness with its replay recipe. The record contains only
// deterministic quantities (counter deltas and simulated times, no
// wall-clock), so it goldens cleanly.
func TestGoldenExplainWaters(t *testing.T) {
	g, fusion, err := disparity.GenerateAutomotive(disparity.AutomotiveConfig{}, disparity.GenConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "waters.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	explainPath := filepath.Join(dir, "out.json")
	var buf bytes.Buffer
	if err := run([]string{"-graph", path, "-task", g.Task(fusion).Name, "-explain", explainPath}, &buf); err != nil {
		t.Fatal(err)
	}
	record, err := os.ReadFile(explainPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "waters_explain", string(record))

	if !strings.Contains(buf.String(), "explain:") {
		t.Error("stdout missing the explain section")
	}
	for _, side := range []string{"out.witness.svg", "out.witness.trace.json"} {
		if info, err := os.Stat(filepath.Join(dir, side)); err != nil || info.Size() == 0 {
			t.Errorf("witness artifact %s missing or empty (err %v)", side, err)
		}
	}
}

// TestAnalyzeMetricsFlag checks the default-off metrics dump and that
// the cache actually backs the report (the backward memo and the shared
// WCRT fixed point must show activity).
func TestAnalyzeMetricsFlag(t *testing.T) {
	path := writeFixture(t)
	var plain bytes.Buffer
	if err := run([]string{"-graph", path}, &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "metrics:") {
		t.Error("metrics dumped without -metrics")
	}
	var buf bytes.Buffer
	if err := run([]string{"-graph", path, "-pairs", "-optimize", "-metrics"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"metrics:",
		"cache.backward.hits",
		"cache.sched.hits",
		"sched.analyses",
		"core.pairs.bounded",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics dump missing %q", name)
		}
	}
}

// TestAnalyzePprofFlag checks that -pprof writes a non-empty profile.
func TestAnalyzePprofFlag(t *testing.T) {
	graph := writeFixture(t)
	prof := filepath.Join(t.TempDir(), "cpu.out")
	if err := run([]string{"-graph", graph, "-pprof", prof}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(prof)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty CPU profile")
	}
}
