// Command disparity-analyze loads a cause-effect graph (JSON) and prints
// its schedulability report, per-chain backward-time bounds, the
// end-to-end latency metric family (MRT, MRRT, MDA, MRDA), and the
// worst-case time disparity of a task under every registered analytic
// bound (P-diff, Theorem 1; S-diff, Theorem 2), optionally with
// Algorithm 1's buffer plan.
//
// Usage:
//
//	disparity-analyze -graph g.json [-task fusion] [-optimize] [-pairs] [-dot out.dot]
//
// Without -task, the single sink of the graph is analyzed. The WCRT
// analysis, backward bounds, and disparity bounds all share one
// AnalysisCache, so each fixed point and chain suffix is computed once;
// -metrics shows the resulting hit counts, -pprof writes a CPU profile.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"path/filepath"
	"strings"

	disparity "repro"
	"repro/internal/backward"
	"repro/internal/chains"
	"repro/internal/cli"
	"repro/internal/core"
	exhaustivepkg "repro/internal/exhaustive"
	"repro/internal/explain"
	"repro/internal/methods"
	"repro/internal/model"
	"repro/internal/sched"
)

// streamPairLimit is the pair count past which -pairs stops
// materializing the full per-pair list and streams it instead
// (core.ForEachPairBound): beyond it the PairBound records, not the
// analysis, would dominate memory. Well above every example workload,
// well below the fleet tier's 4×10^4+ pairs.
const streamPairLimit = 8192

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "disparity-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	app := cli.New("disparity-analyze")
	fs := app.FlagSet()
	graphPath := fs.String("graph", "", "path to the graph JSON (required)")
	taskName := fs.String("task", "", "task to analyze (default: the sink)")
	optimize := fs.Bool("optimize", false, "run Algorithm 1 on the worst pair")
	pairs := fs.Bool("pairs", false, "print every chain pair, not just the worst")
	maxChains := fs.Int("max-chains", 0, "cap on enumerated chains (0 = default)")
	exhaustive := fs.Bool("exhaustive", false, "sweep offsets × exec corners for a worst-case witness (small graphs only)")
	exStep := fs.String("exhaustive-step", "1ms", "offset grid for -exhaustive")
	dotPath := fs.String("dot", "", "also write the graph in Graphviz DOT format")
	if err := app.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	if err := app.Start(); err != nil {
		return err
	}
	defer app.Close()
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := disparity.ReadGraph(f)
	if err != nil {
		return err
	}
	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(df); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
	}

	task, err := pickTask(g, *taskName)
	if err != nil {
		return err
	}
	app.Explain.SetGraph(filepath.Base(*graphPath), g.NumTasks(), g.NumEdges())

	// One cache backs everything below: the schedulability report, the
	// per-chain backward bounds, and the disparity analysis share the
	// WCRT fixed point and the suffix memos.
	cache := disparity.NewAnalysisCache()
	if app.Tracer != nil {
		cache.WithTrack(app.Tracer.Track("analysis"))
	}

	// Schedulability report.
	res := cache.Sched(g, sched.NonPreemptiveFP)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tecu\tprio\tW\tB\tT\tR\tok")
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(model.TaskID(i))
		ecu := "-"
		if t.ECU != model.NoECU {
			ecu = g.ECU(t.ECU).Name
		}
		ok := "yes"
		if res.R(t.ID) > t.Period {
			ok = "NO"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%v\t%v\t%v\t%s\n",
			t.Name, ecu, t.Prio, t.WCET, t.BCET, t.Period, res.R(t.ID), ok)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !res.Schedulable {
		return fmt.Errorf("graph is not schedulable under NP-FP; disparity bounds undefined")
	}

	// Chains and backward-time bounds. The trie index truncates at the
	// cap instead of failing, so an over-cap graph still gets a partial
	// listing — flagged, like the bounds below.
	idx := chains.NewIndex(g, task, *maxChains)
	an := backward.NewAnalyzer(g, res, backward.NonPreemptive).
		WithMemo(cache.BackwardMemo(backward.NonPreemptive))
	fmt.Fprintf(stdout, "\nchains ending at %s:\n", g.Task(task).Name)
	for _, c := range idx.Chains() {
		fmt.Fprintf(stdout, "  %-50s WCBT=%v BCBT=%v\n", c.Format(g), an.WCBT(c), an.BCBT(c))
	}
	if idx.Truncated() {
		fmt.Fprintf(stdout, "  ... enumeration truncated at the first %d chains (raise -max-chains)\n", idx.NumChains())
	}

	a, err := disparity.AnalyzeWithCache(g, cache)
	if err != nil {
		return err
	}
	// Every analytic bound in the method registry gets a section; the
	// labels and pair breakdowns come from the methods themselves.
	ctx := context.Background()
	// FullDetail: the -pairs flag prints every chain pair, which only the
	// complete per-pair analysis materializes. Past streamPairLimit the
	// materialized list would dominate memory (fleet-scale graphs reach
	// 10^4–10^5 pairs), so the listing switches to the streaming
	// iterator and the methods run bound-only — same bounds, same argmax
	// pair, O(1) pair memory.
	streamPairs := chains.NumPairs(idx.NumChains()) > streamPairLimit
	ec := &methods.Context{Analysis: a, MaxChains: *maxChains, FullDetail: !streamPairs}

	// End-to-end latency metric family, off the same cached trie.
	fmt.Fprintf(stdout, "\nend-to-end latency bounds of %s:\n", g.Task(task).Name)
	for _, m := range methods.LatencyAnalytic() {
		r, err := m.Eval(ctx, ec, g, task)
		if err != nil {
			return err
		}
		worst := ""
		if r.Latency != nil && len(r.Latency.ArgMax) > 0 {
			worst = "  worst: " + r.Latency.ArgMax.Format(g)
		}
		fmt.Fprintf(stdout, "  %-5s %-8v (%s)%s\n", m.Name(), r.Bound, m.Ref(), worst)
		if r.Truncated {
			fmt.Fprintf(stdout, "  WARNING: chain enumeration truncated at the cap; the bound covers a partial chain set (raise -max-chains)\n")
		}
	}

	// witnessTD is the per-pair detail the witness is extracted from:
	// the S-diff bound when available (the tighter exact analysis),
	// otherwise the last method with a detail.
	var witnessTD *core.TaskDisparity
	var witnessMethod string
	for _, m := range methods.Bounds() {
		r, err := m.Eval(ctx, ec, g, task)
		if err != nil {
			return err
		}
		mr := explain.MethodRecord{
			Method: m.Name(), BoundNS: r.Bound, Truncated: r.Truncated,
		}
		if d := r.Detail; d != nil {
			mr.NumPairs = int64(d.NumPairs)
			if d.ArgMax >= 0 {
				pb := d.Pairs[d.ArgMax]
				mr.ArgMax = &explain.ArgMaxInfo{
					Lambda: pb.Lambda.Format(g), Nu: pb.Nu.Format(g),
					BoundNS: pb.Bound, SameHead: pb.SameHead, X1: pb.X1, Y1: pb.Y1,
				}
				if witnessTD == nil || m.Name() == core.SDiff.String() {
					witnessTD, witnessMethod = d, m.Name()
				}
			}
		}
		app.Explain.Method(mr)
		fmt.Fprintf(stdout, "\n%s worst-case time disparity of %s: %v\n", m.Name(), g.Task(task).Name, r.Bound)
		if r.Truncated {
			fmt.Fprintf(stdout, "  WARNING: chain enumeration truncated at the cap; the bound covers a partial chain set (raise -max-chains)\n")
		}
		if *pairs && !streamPairs && r.Detail != nil {
			for _, pb := range r.Detail.Pairs {
				fmt.Fprintf(stdout, "  %v | %v: %v (x1=%d y1=%d)\n",
					pb.Lambda.Format(g), pb.Nu.Format(g), pb.Bound, pb.X1, pb.Y1)
			}
		}
		if *pairs && streamPairs {
			if cm, ok := methods.CoreMethod(m.Name()); ok {
				var streamErr error
				if _, err := a.ForEachPairBound(task, cm, *maxChains, func(_ int, pb *core.PairBound) bool {
					_, streamErr = fmt.Fprintf(stdout, "  %v | %v: %v (x1=%d y1=%d)\n",
						pb.Lambda.Format(g), pb.Nu.Format(g), pb.Bound, pb.X1, pb.Y1)
					return streamErr == nil
				}); err != nil {
					return err
				}
				if streamErr != nil {
					return streamErr
				}
			}
		}
	}

	if app.Explain.Enabled() && witnessTD != nil {
		w, err := explain.BuildWitness(g, witnessMethod, witnessTD, 1)
		if err != nil {
			return err
		}
		if w != nil {
			app.Explain.SetWitness(w)
			base := strings.TrimSuffix(app.ExplainPath(), filepath.Ext(app.ExplainPath()))
			svgPath := base + ".witness.svg"
			sf, err := os.Create(svgPath)
			if err != nil {
				return err
			}
			if err := w.WriteSVG(sf); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
			ctPath := base + ".witness.trace.json"
			if err := w.WriteChromeTrace(ctPath); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "disparity-analyze: witness timeline written to %s and %s (open in ui.perfetto.dev)\n",
				svgPath, ctPath)
		}
	}

	if *exhaustive {
		step, err := disparity.ParseTime(*exStep)
		if err != nil {
			return err
		}
		res, err := exhaustivepkg.Search(g, task, exhaustivepkg.Config{OffsetStep: step})
		if err != nil {
			return err
		}
		sd, err := methods.SDiff.Eval(ctx, ec, g, task)
		if err != nil {
			return err
		}
		pct := 0.0
		if sd.Bound > 0 {
			pct = 100 * float64(res.Disparity) / float64(sd.Bound)
		}
		fmt.Fprintf(stdout, "\nexhaustive witness: disparity %v over %d configurations (%.0f%% of S-diff)\n",
			res.Disparity, res.Combos, pct)
	}

	if *optimize {
		plan, _, err := a.OptimizeTask(task, *maxChains)
		if err != nil {
			return err
		}
		src, dst := g.Task(plan.Edge.Src).Name, g.Task(plan.Edge.Dst).Name
		fmt.Fprintf(stdout, "\nAlgorithm 1: set buffer %s -> %s to capacity %d (shift L=%v)\n",
			src, dst, plan.Cap, plan.L)
		fmt.Fprintf(stdout, "Theorem 3 bound: %v -> %v\n", plan.Before, plan.After)
	}
	if err := app.Explain.WriteSummary(stdout); err != nil {
		return err
	}
	return app.Finish(stdout, 0, nil)
}

func pickTask(g *disparity.Graph, name string) (disparity.TaskID, error) {
	if name != "" {
		t, ok := g.TaskByName(name)
		if !ok {
			return 0, fmt.Errorf("no task named %q", name)
		}
		return t.ID, nil
	}
	sinks := g.Sinks()
	if len(sinks) != 1 {
		return 0, fmt.Errorf("graph has %d sinks; pass -task to choose one", len(sinks))
	}
	return sinks[0], nil
}
