package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

// writeFixture writes the Fig. 2 example graph as JSON and returns the
// path.
func writeFixture(t *testing.T) string {
	t.Helper()
	g := model.Fig2Graph()
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyze(t *testing.T) {
	path := writeFixture(t)
	dot := filepath.Join(filepath.Dir(path), "g.dot")
	if err := run([]string{"-graph", path, "-optimize", "-pairs", "-dot", dot}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Error("DOT export missing")
	}
}

func TestRunAnalyzeNamedTask(t *testing.T) {
	path := writeFixture(t)
	if err := run([]string{"-graph", path, "-task", "t5"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", path, "-task", "nope"}, io.Discard); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRunAnalyzeErrors(t *testing.T) {
	if err := run([]string{}, io.Discard); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := run([]string{"-graph", "/nonexistent.json"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", bad}, io.Discard); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestPickTaskMultiSink(t *testing.T) {
	g := model.NewGraph()
	ecu := g.AddECU("e", model.Compute)
	g.AddTask(model.Task{Name: "a", WCET: 1, BCET: 1, Period: 1000, Prio: 0, ECU: ecu})
	g.AddTask(model.Task{Name: "b", WCET: 1, BCET: 1, Period: 1000, Prio: 1, ECU: ecu})
	if _, err := pickTask(g, ""); err == nil {
		t.Error("two sinks without -task accepted")
	}
	task, err := pickTask(g, "b")
	if err != nil || g.Task(task).Name != "b" {
		t.Errorf("pickTask by name = %v, %v", task, err)
	}
}

func TestRunAnalyzeExhaustive(t *testing.T) {
	// A graph small enough for the sweep: the Fig. 4 example at a coarse
	// grid.
	g := model.Fig4Graph(30 * 1000 * 1000)
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-graph", path, "-exhaustive", "-exhaustive-step", "10ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// A too-fine grid trips the combination cap.
	if err := run([]string{"-graph", path, "-exhaustive", "-exhaustive-step", "1us"}, io.Discard); err == nil {
		t.Error("combination explosion not caught")
	}
}

func TestRunAnalyzeChromeTrace(t *testing.T) {
	path := writeFixture(t)
	tracePath := filepath.Join(filepath.Dir(path), "analysis.trace.json")
	if err := run([]string{"-graph", path, "-trace", tracePath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("trace missing traceEvents")
	}
}
