package disparity

import (
	"math/rand"

	"repro/internal/can"
	"repro/internal/letanalysis"
	"repro/internal/offsetopt"
	"repro/internal/randgraph"
	"repro/internal/timeu"
	"repro/internal/waters"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenConfig shapes random workload generation.
type GenConfig struct {
	// ECUs is the number of compute ECUs (≥ 1). Zero selects 4, the
	// evaluation default.
	ECUs int
	// Seed drives all randomness.
	Seed int64
}

func (c GenConfig) ecus() int {
	if c.ECUs == 0 {
		return 4
	}
	return c.ECUs
}

// GenerateGNM builds a WATERS-parameterized random cause-effect DAG in
// the style of the paper's Fig. 6(a) evaluation: an n-vertex, m-edge
// uniform random graph (NetworkX dense_gnm_random_graph) oriented into a
// DAG, condensed to a single sink, with stimulus sources and
// rate-monotonic priorities.
func GenerateGNM(n, m int, cfg GenConfig) (*Graph, error) {
	rng := newRand(cfg.Seed)
	g, err := randgraph.GNM(n, m, randgraph.Config{ECUs: cfg.ecus(), StimulusSources: true}, rng)
	if err != nil {
		return nil, err
	}
	waters.Populate(g, rng)
	return g, nil
}

// GenerateTwoChains builds the Fig. 6(c) topology: two independent
// chains of chainLen tasks each merged at one sink, WATERS-parameterized.
// The returned chains include the sink.
func GenerateTwoChains(chainLen int, cfg GenConfig) (*Graph, Chain, Chain, error) {
	rng := newRand(cfg.Seed)
	g, la, nu, err := randgraph.TwoChains(chainLen, randgraph.Config{ECUs: cfg.ecus(), StimulusSources: true}, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	waters.Populate(g, rng)
	return g, la, nu, nil
}

// GenerateLayered builds a layered DAG (sensing → processing → fusion
// stages) with the given layer widths and per-task fanout,
// WATERS-parameterized.
func GenerateLayered(widths []int, fanout int, cfg GenConfig) (*Graph, error) {
	rng := newRand(cfg.Seed)
	g, err := randgraph.Layered(widths, fanout, randgraph.Config{ECUs: cfg.ecus(), StimulusSources: true}, rng)
	if err != nil {
		return nil, err
	}
	waters.Populate(g, rng)
	return g, nil
}

// AutomotiveConfig shapes GenerateAutomotive: sensor count, per-sensor
// processing depth, shared tail length, zonal vs central ECUs.
type AutomotiveConfig = randgraph.AutomotiveConfig

// GenerateAutomotive builds a sensing → fusion → planning → control
// architecture in the style of the paper's Fig. 1 (the PerceptIn
// pipeline), WATERS-parameterized, and returns the fusion task — the
// natural target for disparity analysis. A zero-valued config selects
// the default three-sensor zonal platform.
func GenerateAutomotive(cfg AutomotiveConfig, gen GenConfig) (*Graph, TaskID, error) {
	if cfg == (AutomotiveConfig{}) {
		cfg = randgraph.DefaultAutomotive()
	}
	g, fusion, err := randgraph.Automotive(cfg)
	if err != nil {
		return nil, 0, err
	}
	waters.Populate(g, newRand(gen.Seed))
	return g, fusion, nil
}

// FleetConfig shapes GenerateFleet: zones, ECUs per zone, pipelines
// per ECU, processing depth and tail length.
type FleetConfig = randgraph.FleetConfig

// GenerateFleet builds a fleet-scale zonal E/E architecture — per-ECU
// sensor pipelines joined by aggregators, per-zone gateways, central
// fusion with a shared tail — at the 10^3–10^4-task scale, and returns
// the fusion task, the natural disparity target. A zero-valued config
// selects randgraph.DefaultFleet (≈ 2000 tasks).
//
// Unlike the WATERS-populated small topologies, execution times are
// budgeted (waters.PopulateBudget): every ECU's total WCET stays below
// half its shortest period, so the graph is NP-FP schedulable by
// construction — a retry loop at this scale would be prohibitive.
// Cross-ECU edges (aggregator→gateway, gateway→fusion) are split over
// a 500 kbit/s standard-frame CAN bus.
func GenerateFleet(cfg FleetConfig, gen GenConfig) (*Graph, TaskID, error) {
	if cfg == (FleetConfig{}) {
		cfg = randgraph.DefaultFleet()
	}
	g, fusion, err := randgraph.Fleet(cfg)
	if err != nil {
		return nil, 0, err
	}
	waters.PopulateBudget(g, newRand(gen.Seed), 20*timeu.Millisecond, 0.5)
	bus := can.Bus{Rate: can.Baud500k, Format: can.Standard, Payload: 8}
	if _, _, err := bus.Split(g, "can0"); err != nil {
		return nil, 0, err
	}
	return g, fusion, nil
}

// OffsetOptConfig parameterizes OptimizeOffsets; see internal/offsetopt
// for field semantics. The zero value selects sensible defaults.
type OffsetOptConfig = offsetopt.Config

// OffsetOptResult reports an offset search.
type OffsetOptResult = offsetopt.Result

// OptimizeOffsets searches release offsets that reduce the disparity the
// task actually exhibits — the design knob complementary to Algorithm
// 1's buffers. Under LET the evaluation is exact (one hyperperiod of
// deterministic data flow); under implicit communication it is a sampled
// heuristic. The graph's offsets are updated to the best assignment.
func OptimizeOffsets(g *Graph, task TaskID, cfg OffsetOptConfig) (*OffsetOptResult, error) {
	return offsetopt.Optimize(g, task, cfg)
}

// ExactLETDisparity computes the exact worst-case time disparity of a
// task in an all-LET graph for its concrete offsets, by closed-form
// backward resolution over one hyperperiod (no simulation). It
// complements the offset-oblivious bounds of Analyze: the exact value is
// never above them, and the gap is what offset tuning can exploit.
func ExactLETDisparity(g *Graph, task TaskID) (Time, error) {
	res, err := letanalysis.Exact(g, task, 0)
	if err != nil {
		return 0, err
	}
	return res.Disparity, nil
}
