#!/bin/sh
# Refreshes the "current" section of BENCH_analysis.json from a live run
# of the analysis benchmarks. The "baseline" section (the pre-trie
# per-pair pipeline, measured on the same machine) is preserved verbatim
# so future PRs can compare against a fixed reference.
#
# Numbers are machine-relative: regenerate baseline and current on the
# SAME box, or compare only the interleaved PairBounds /
# PairBoundsReference pair, which shares whatever noise the machine has.
#
# Usage: sh tools/bench_analysis_json.sh [count]   (default 5, best-of)
# BENCH_OUT_DIR redirects the output file (the CI bench gate writes a
# fresh copy to .bench/ and diffs it against the checked-in baseline).
set -e

cd "$(dirname "$0")/.."
COUNT="${1:-5}"
OUT="${BENCH_OUT_DIR:-.}/BENCH_analysis.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
	-bench 'BenchmarkPairBounds$|BenchmarkPairBoundsReference$|BenchmarkChainIndex$|BenchmarkAnalyzePDiff$|BenchmarkAnalyzeSDiff$|BenchmarkEnumerateChains$|BenchmarkBoundsSweepCached$|BenchmarkChainIndexFleet$|BenchmarkPairBoundsFleet$|BenchmarkPairBoundsFleetPruned$' \
	-benchtime 10x -count "$COUNT" -benchmem . | tee "$TMP"

# Best-of-count per benchmark: min ns/op and the allocs/op (identical
# across runs of the same binary, so min is fine).
current="$(awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = $3 + 0
		allocs = ""
		for (i = 4; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1) + 0
		if (!(name in best) || ns < best[name]) { best[name] = ns; al[name] = allocs }
	}
	END {
		printf "{"
		sep = ""
		for (name in best) {
			printf "%s\"%s\":{\"ns_op\":%d,\"allocs_op\":%s}", sep, name, best[name], al[name] == "" ? "null" : al[name]
			sep = ","
		}
		printf "}"
	}' "$TMP")"

if [ -f "$OUT" ]; then
	jq --argjson cur "$current" \
		--arg go "$(go version | awk '{print $3 " " $4}')" \
		'.current = $cur | .machine.go = $go' "$OUT" >"$OUT.new"
	mv "$OUT.new" "$OUT"
else
	jq -n --argjson cur "$current" \
		--arg go "$(go version | awk '{print $3 " " $4}')" \
		'{machine: {go: $go}, baseline: null, current: $cur}' >"$OUT"
fi

echo "wrote $OUT"
