// Command bench_compare diffs a fresh benchmark JSON (the output of
// tools/bench_json.sh / tools/bench_analysis_json.sh) against a
// checked-in baseline and fails on regression. It is the CI bench gate:
//
//	go run ./tools/bench_compare BENCH_sim.json .bench/BENCH_sim.json \
//	    BENCH_analysis.json .bench/BENCH_analysis.json
//
// Positional arguments are (baseline, fresh) file pairs. Exit status is
// nonzero when any regression is found unless -report-only is set.
//
// The repo's bench files carry a warning for a reason: absolute ns/op
// on a 1-CPU CI box swings by tens of percent run to run. The gate
// therefore leans on the interleaved ratio pairs — benchmarks that run
// in the same process and share whatever noise the machine has:
//
//	PooledEngine   / ReferenceEngine        (engine pooling speedup)
//	SimThroughput  / ReferenceEngine        (jump-ahead fallback overhead)
//	SimJumpAhead   / SimJumpAheadDisabled   (steady-state jump-ahead speedup)
//	PairBounds     / PairBoundsReference    (trie fast-path speedup)
//	ChainIndexFleet / ChainIndex            (fleet-tier index build scaling)
//	PairBoundsFleet / PairBounds            (fleet-tier bound scaling)
//
// A ratio regressing past -ratio-tolerance (default 20%) is a real
// slowdown regardless of machine noise. Absolute per-benchmark ns/op
// only trips at the loose -abs-tolerance (default 60%), and allocs/op —
// which is deterministic — at -alloc-tolerance (default 10%).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// entry is one benchmark's best-of-count result. AllocsOp is a pointer
// because older baseline sections were recorded without -benchmem.
type entry struct {
	NsOp     float64  `json:"ns_op"`
	AllocsOp *float64 `json:"allocs_op"`
}

type benchFile struct {
	Note    string           `json:"note"`
	Current map[string]entry `json:"current"`
}

// ratioPairs are the interleaved same-process benchmark pairs; the
// ratio cancels machine noise, so it gets the tight tolerance. A pair
// is checked only when all four operands exist in both files.
var ratioPairs = [][2]string{
	{"BenchmarkPooledEngine", "BenchmarkReferenceEngine"},
	{"BenchmarkSimThroughput", "BenchmarkReferenceEngine"},
	{"BenchmarkSimJumpAhead", "BenchmarkSimJumpAheadDisabled"},
	{"BenchmarkPairBounds", "BenchmarkPairBoundsReference"},
	{"BenchmarkChainIndexFleet", "BenchmarkChainIndex"},
	{"BenchmarkPairBoundsFleet", "BenchmarkPairBounds"},
	{"BenchmarkPairBoundsFleetPruned", "BenchmarkPairBoundsFleet"},
}

type tolerances struct {
	ratio float64 // relative slack on interleaved ratio pairs
	abs   float64 // relative slack on absolute ns/op
	alloc float64 // relative slack on allocs/op
}

// compare reports regressions and informational lines for one
// (baseline, fresh) file pair. A benchmark present in the baseline but
// missing from the fresh run is a regression: the gate must not pass
// because a pattern drifted and the benchmark silently stopped running.
func compare(label string, base, fresh map[string]entry, tol tolerances) (regressions, notes []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, p := range ratioPairs {
		bn, bd, okb := lookupPair(base, p)
		fn, fd, okf := lookupPair(fresh, p)
		if !okb || !okf {
			continue
		}
		br, fr := bn.NsOp/bd.NsOp, fn.NsOp/fd.NsOp
		line := fmt.Sprintf("%s: ratio %s/%s %.3f -> %.3f", label, p[0], p[1], br, fr)
		if fr > br*(1+tol.ratio) {
			regressions = append(regressions, line+fmt.Sprintf(" (> %+.0f%%)", 100*tol.ratio))
		} else {
			notes = append(notes, line)
		}
	}

	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: %s missing from the fresh run (benchmark pattern drift?)", label, name))
			continue
		}
		if f.NsOp > b.NsOp*(1+tol.abs) {
			regressions = append(regressions, fmt.Sprintf("%s: %s ns/op %.0f -> %.0f (> %+.0f%%)",
				label, name, b.NsOp, f.NsOp, 100*tol.abs))
		}
		if b.AllocsOp != nil && f.AllocsOp != nil && *f.AllocsOp > *b.AllocsOp*(1+tol.alloc) {
			regressions = append(regressions, fmt.Sprintf("%s: %s allocs/op %.0f -> %.0f (> %+.0f%%)",
				label, name, *b.AllocsOp, *f.AllocsOp, 100*tol.alloc))
		}
	}
	return regressions, notes
}

func lookupPair(m map[string]entry, p [2]string) (num, den entry, ok bool) {
	num, okn := m[p[0]]
	den, okd := m[p[1]]
	if !okn || !okd || den.NsOp <= 0 {
		return entry{}, entry{}, false
	}
	return num, den, true
}

func readBench(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Current) == 0 {
		return nil, fmt.Errorf("%s: no \"current\" benchmark section", path)
	}
	return f.Current, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench_compare", flag.ContinueOnError)
	fs.SetOutput(stdout)
	reportOnly := fs.Bool("report-only", false, "print the comparison but always exit 0")
	ratioTol := fs.Float64("ratio-tolerance", 0.20, "relative slack on interleaved ratio pairs")
	absTol := fs.Float64("abs-tolerance", 0.60, "relative slack on absolute ns/op (noisy on shared boxes)")
	allocTol := fs.Float64("alloc-tolerance", 0.10, "relative slack on allocs/op")
	fs.Usage = func() {
		fmt.Fprintln(stdout, "usage: bench_compare [flags] baseline.json fresh.json [baseline2.json fresh2.json ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 || len(files)%2 != 0 {
		fs.Usage()
		return fmt.Errorf("need an even number of file arguments (baseline, fresh pairs)")
	}
	tol := tolerances{ratio: *ratioTol, abs: *absTol, alloc: *allocTol}

	var all []string
	for i := 0; i < len(files); i += 2 {
		base, err := readBench(files[i])
		if err != nil {
			return err
		}
		fresh, err := readBench(files[i+1])
		if err != nil {
			return err
		}
		regressions, notes := compare(fmt.Sprintf("%s vs %s", files[i], files[i+1]), base, fresh, tol)
		for _, n := range notes {
			fmt.Fprintln(stdout, "ok:", n)
		}
		for _, r := range regressions {
			fmt.Fprintln(stdout, "REGRESSION:", r)
		}
		all = append(all, regressions...)
	}
	if len(all) == 0 {
		fmt.Fprintln(stdout, "bench gate: no regressions")
		return nil
	}
	if *reportOnly {
		fmt.Fprintf(stdout, "bench gate: %d regression(s), report-only mode — not failing\n", len(all))
		return nil
	}
	return fmt.Errorf("bench gate: %d regression(s)", len(all))
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}
}
