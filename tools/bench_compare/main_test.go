package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// simFixture mirrors the shape of BENCH_sim.json's "current" section
// with round numbers: the pooled engine 10x over reference, jump-ahead
// 100x over disabled.
const simFixture = `{
  "current": {
    "BenchmarkPooledEngine": {"ns_op": 1000000, "allocs_op": 450},
    "BenchmarkReferenceEngine": {"ns_op": 10000000, "allocs_op": 4000},
    "BenchmarkSimThroughput": {"ns_op": 4000000, "allocs_op": 450},
    "BenchmarkSimJumpAhead": {"ns_op": 100000, "allocs_op": 470},
    "BenchmarkSimJumpAheadDisabled": {"ns_op": 10000000, "allocs_op": 450}
  }
}`

// TestSelfCompareBaselinesPass runs the gate on the repo's checked-in
// bench files against themselves: identical ratios, identical absolutes
// — the gate must pass, proving the checked-in baselines are healthy
// inputs.
func TestSelfCompareBaselinesPass(t *testing.T) {
	for _, f := range []string{"BENCH_sim.json", "BENCH_analysis.json"} {
		path := filepath.Join("..", "..", f)
		var out bytes.Buffer
		if err := run([]string{path, path}, &out); err != nil {
			t.Errorf("self-compare of %s failed: %v\n%s", f, err, out.String())
		}
		if !strings.Contains(out.String(), "no regressions") {
			t.Errorf("self-compare of %s: missing pass line:\n%s", f, out.String())
		}
	}
}

// TestSyntheticRegressionFails doubles the pooled engine's ns/op (a 2x
// slowdown of the fast side of an interleaved pair) and expects a
// nonzero gate.
func TestSyntheticRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", simFixture)
	fresh := writeBench(t, dir, "fresh.json", strings.Replace(simFixture,
		`"BenchmarkPooledEngine": {"ns_op": 1000000`,
		`"BenchmarkPooledEngine": {"ns_op": 2000000`, 1))

	var out bytes.Buffer
	err := run([]string{base, fresh}, &out)
	if err == nil {
		t.Fatalf("2x ratio regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION:") ||
		!strings.Contains(out.String(), "BenchmarkPooledEngine/BenchmarkReferenceEngine") {
		t.Errorf("regression report missing the offending ratio:\n%s", out.String())
	}

	// Same inputs in report-only mode: printed but passing.
	out.Reset()
	if err := run([]string{"-report-only", base, fresh}, &out); err != nil {
		t.Errorf("report-only mode failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "report-only") {
		t.Errorf("report-only summary line missing:\n%s", out.String())
	}
}

// TestRatioToleratesSharedNoise scales EVERY ns/op by 1.5x — the
// machine got uniformly slower. The interleaved ratios are unchanged
// and the absolute drift is under the loose 60% guard, so the gate
// must pass.
func TestRatioToleratesSharedNoise(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", simFixture)
	noisy := simFixture
	for _, r := range [][2]string{
		{`"ns_op": 1000000,`, `"ns_op": 1500000,`},
		{`"ns_op": 10000000,`, `"ns_op": 15000000,`},
		{`"ns_op": 4000000,`, `"ns_op": 6000000,`},
		{`"ns_op": 100000,`, `"ns_op": 150000,`},
	} {
		noisy = strings.ReplaceAll(noisy, r[0], r[1])
	}
	fresh := writeBench(t, dir, "fresh.json", noisy)
	var out bytes.Buffer
	if err := run([]string{base, fresh}, &out); err != nil {
		t.Errorf("uniform 1.5x noise tripped the gate: %v\n%s", err, out.String())
	}
}

// TestAllocRegressionFails bumps allocs/op past the 10% slack; allocs
// are deterministic, so this must fail even though ns/op is unchanged.
func TestAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", simFixture)
	fresh := writeBench(t, dir, "fresh.json", strings.Replace(simFixture,
		`"allocs_op": 470`, `"allocs_op": 940`, 1))
	var out bytes.Buffer
	if err := run([]string{base, fresh}, &out); err == nil {
		t.Errorf("2x allocs/op regression passed the gate:\n%s", out.String())
	}
}

// TestMissingBenchmarkFails drops a baseline benchmark from the fresh
// run: pattern drift must not silently pass.
func TestMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", simFixture)
	fresh := writeBench(t, dir, "fresh.json", strings.Replace(simFixture,
		"BenchmarkSimThroughput", "BenchmarkRenamed", 1))
	var out bytes.Buffer
	if err := run([]string{base, fresh}, &out); err == nil {
		t.Errorf("missing benchmark passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from the fresh run") {
		t.Errorf("missing-benchmark diagnostic absent:\n%s", out.String())
	}
}

// TestBadInputs covers the argument and file validation paths.
func TestBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"only-one.json"}, &out); err == nil {
		t.Error("odd file count accepted")
	}
	if err := run([]string{"nope.json", "nope.json"}, &out); err == nil {
		t.Error("unreadable file accepted")
	}
	dir := t.TempDir()
	empty := writeBench(t, dir, "empty.json", `{"current": {}}`)
	if err := run([]string{empty, empty}, &out); err == nil {
		t.Error("empty current section accepted")
	}
}
