#!/bin/sh
# Advisory escape-analysis spot check for the simulator hot path.
#
# The pooled engine's throughput rests on jobs, tokens, and heap entries
# staying pool-recycled or stack-allocated; a careless change (say, a
# closure capturing *Job, or an interface conversion in dispatch) silently
# reintroduces a per-job heap allocation that only shows up as a benchmark
# regression much later. This prints every value in internal/sim that the
# compiler moves to the heap, so the diff of its output in a code review
# answers "did this PR add an allocation?" directly.
#
# Non-fatal by design: some escapes are expected (pool refills, the
# engine itself, error paths). Exit status is 0 unless the build fails.
#
# Usage: sh tools/escape_check.sh [extra go build args]
set -e
cd "$(dirname "$0")/.."

echo "== heap escapes in internal/sim (go build -gcflags=-m) =="
go build -gcflags='-m' ./internal/sim/ 2>&1 |
	grep -E 'escapes to heap|moved to heap' |
	grep -v '_test\.go' |
	sort | uniq -c | sort -rn || true
