#!/bin/sh
# Guards the observability layer's hot-path cost: with tracing DISABLED
# (SimConfig.Trace == nil) the simulator must run within OBS_TOLERANCE_PCT
# (default 2%) of the throughput recorded in BENCH_sim.json's "current"
# section, and keep its ~0 allocs/job steady state.
#
# This box is a 1-CPU VM whose absolute ns/op swings far more than 2%
# with ambient load, so a raw comparison against a stored number would
# measure the machine, not the instrumentation. The guard therefore
# normalizes through an anchor: BenchmarkReferenceEngine exercises the
# preserved straight-line engine (internal/sim/reference.go), which the
# observability layer does not touch, so any genuine instrumentation
# cost shows up as drift in the SimThroughput/ReferenceEngine *ratio*
# while machine-speed drift cancels. Both benchmarks are re-run now
# (best-of-COUNT min ns/op, the convention of tools/bench_json.sh) and
# the ratio is compared against the ratio of the stored pair, which
# `make bench-json` records in one session.
#
# Usage: sh tools/check_obs_overhead.sh [count]   (default 8 — the box
# needs several samples for the min to converge through the noise)
set -e

cd "$(dirname "$0")/.."
COUNT="${1:-8}"
TOL="${OBS_TOLERANCE_PCT:-2}"
BASE=BENCH_sim.json

if [ ! -f "$BASE" ]; then
	echo "check_obs_overhead: $BASE missing; run make bench-json first" >&2
	exit 1
fi

base_sim="$(jq -r '.current.BenchmarkSimThroughput.ns_op' "$BASE")"
base_ref="$(jq -r '.current.BenchmarkReferenceEngine.ns_op' "$BASE")"
base_allocs="$(jq -r '.current.BenchmarkSimThroughput.allocs_op' "$BASE")"
if [ "$base_sim" = "null" ] || [ "$base_ref" = "null" ] || [ -z "$base_sim" ]; then
	echo "check_obs_overhead: $BASE lacks current.BenchmarkSimThroughput/BenchmarkReferenceEngine" >&2
	exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
go test -run '^$' -bench 'BenchmarkSimThroughput$|BenchmarkReferenceEngine$' \
	-benchtime 10x -count "$COUNT" -benchmem . ./internal/integration | tee "$TMP"

cur_sim="$(awk '/^BenchmarkSimThroughput/ { ns = $3 + 0; if (best == "" || ns < best) best = ns } END { print best }' "$TMP")"
cur_ref="$(awk '/^BenchmarkReferenceEngine/ { ns = $3 + 0; if (best == "" || ns < best) best = ns } END { print best }' "$TMP")"
cur_allocs="$(awk '/^BenchmarkSimThroughput/ { for (i = 4; i <= NF; i++) if ($i == "allocs/op") print $(i-1) + 0 }' "$TMP" | sort -n | head -1)"
if [ -z "$cur_sim" ] || [ -z "$cur_ref" ]; then
	echo "check_obs_overhead: benchmarks produced no output" >&2
	exit 1
fi

# Allocation regression is absolute, not percentage: steady state must
# not grow (jobs-per-iteration is fixed, so allocs/op is deterministic).
if [ -n "$cur_allocs" ] && [ -n "$base_allocs" ] && [ "$base_allocs" != "null" ] &&
	[ "$cur_allocs" -gt "$base_allocs" ]; then
	echo "check_obs_overhead: FAIL allocs/op $cur_allocs > baseline $base_allocs" >&2
	exit 1
fi

# pct drift of the sim/reference ratio, in awk to avoid shell floats.
awk -v cs="$cur_sim" -v cr="$cur_ref" -v bs="$base_sim" -v br="$base_ref" -v tol="$TOL" 'BEGIN {
	cur = cs / cr
	base = bs / br
	pct = (cur - base) / base * 100
	printf "check_obs_overhead: sim/reference ratio %.4f vs baseline %.4f (%+.2f%%, tolerance %s%%)\n",
		cur, base, pct, tol
	printf "check_obs_overhead: raw %d ns/op vs stored %d ns/op (anchor %d vs %d)\n",
		cs, bs, cr, br
	exit (pct > tol) ? 1 : 0
}' || { echo "check_obs_overhead: FAIL normalized throughput regressed beyond ${TOL}%" >&2; exit 1; }

echo "check_obs_overhead: OK"
