#!/bin/sh
# Guards the observability layer's hot-path cost: with tracing DISABLED
# (SimConfig.Trace == nil) the simulator must run within OBS_TOLERANCE_PCT
# (default 2%) of the throughput recorded in BENCH_sim.json's "current"
# section, and keep its ~0 allocs/job steady state.
#
# This box is a 1-CPU VM whose absolute ns/op swings far more than 2%
# with ambient load, so a raw comparison against a stored number would
# measure the machine, not the instrumentation. The guard therefore
# normalizes through an anchor: BenchmarkReferenceEngine exercises the
# preserved straight-line engine (internal/sim/reference.go), which the
# observability layer does not touch, so any genuine instrumentation
# cost shows up as drift in the SimThroughput/ReferenceEngine *ratio*
# while machine-speed drift cancels. Both benchmarks are re-run now
# (best-of-COUNT min ns/op, the convention of tools/bench_json.sh) and
# the ratio is compared against the ratio of the stored pair, which
# `make bench-json` records in one session.
#
# Usage: sh tools/check_obs_overhead.sh [count]   (default 8 — the box
# needs several samples for the min to converge through the noise)
set -e

cd "$(dirname "$0")/.."
COUNT="${1:-8}"
TOL="${OBS_TOLERANCE_PCT:-2}"
BASE=BENCH_sim.json

if [ ! -f "$BASE" ]; then
	echo "check_obs_overhead: $BASE missing; run make bench-json first" >&2
	exit 1
fi

base_sim="$(jq -r '.current.BenchmarkSimThroughput.ns_op' "$BASE")"
base_ref="$(jq -r '.current.BenchmarkReferenceEngine.ns_op' "$BASE")"
base_allocs="$(jq -r '.current.BenchmarkSimThroughput.allocs_op' "$BASE")"
if [ "$base_sim" = "null" ] || [ "$base_ref" = "null" ] || [ -z "$base_sim" ]; then
	echo "check_obs_overhead: $BASE lacks current.BenchmarkSimThroughput/BenchmarkReferenceEngine" >&2
	exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
go test -run '^$' -bench 'BenchmarkSimThroughput$|BenchmarkReferenceEngine$' \
	-benchtime 10x -count "$COUNT" -benchmem . ./internal/integration | tee "$TMP"

cur_sim="$(awk '/^BenchmarkSimThroughput/ { ns = $3 + 0; if (best == "" || ns < best) best = ns } END { print best }' "$TMP")"
cur_ref="$(awk '/^BenchmarkReferenceEngine/ { ns = $3 + 0; if (best == "" || ns < best) best = ns } END { print best }' "$TMP")"
cur_allocs="$(awk '/^BenchmarkSimThroughput/ { for (i = 4; i <= NF; i++) if ($i == "allocs/op") print $(i-1) + 0 }' "$TMP" | sort -n | head -1)"
if [ -z "$cur_sim" ] || [ -z "$cur_ref" ]; then
	echo "check_obs_overhead: benchmarks produced no output" >&2
	exit 1
fi

# Allocation regression is absolute, not percentage: steady state must
# not grow (jobs-per-iteration is fixed, so allocs/op is deterministic).
if [ -n "$cur_allocs" ] && [ -n "$base_allocs" ] && [ "$base_allocs" != "null" ] &&
	[ "$cur_allocs" -gt "$base_allocs" ]; then
	echo "check_obs_overhead: FAIL allocs/op $cur_allocs > baseline $base_allocs" >&2
	exit 1
fi

# pct drift of the sim/reference ratio, in awk to avoid shell floats.
awk -v cs="$cur_sim" -v cr="$cur_ref" -v bs="$base_sim" -v br="$base_ref" -v tol="$TOL" 'BEGIN {
	cur = cs / cr
	base = bs / br
	pct = (cur - base) / base * 100
	printf "check_obs_overhead: sim/reference ratio %.4f vs baseline %.4f (%+.2f%%, tolerance %s%%)\n",
		cur, base, pct, tol
	printf "check_obs_overhead: raw %d ns/op vs stored %d ns/op (anchor %d vs %d)\n",
		cs, bs, cr, br
	exit (pct > tol) ? 1 : 0
}' || { echo "check_obs_overhead: FAIL normalized throughput regressed beyond ${TOL}%" >&2; exit 1; }

# ---- analysis-side guard: PairBounds / PairBoundsReference ----------
# The decision-telemetry counters (core.pairs.pruned, core.bound.parallel)
# sit on the pair-bounding hot path; the explain recorder itself only
# reads counter snapshots at frontend start/finish and adds no per-pair
# work. With -explain disabled the normalized pair-bounds ratio must
# stay within the same tolerance, using the same anchor methodology:
# BenchmarkPairBoundsReference runs the preserved per-pair pipeline,
# which the counters do not touch, so machine drift cancels in the
# ratio.
ABASE=BENCH_analysis.json
if [ ! -f "$ABASE" ]; then
	echo "check_obs_overhead: $ABASE missing; skipping the analysis-side guard" >&2
else
	abase_fast="$(jq -r '.current.BenchmarkPairBounds.ns_op' "$ABASE")"
	abase_ref="$(jq -r '.current.BenchmarkPairBoundsReference.ns_op' "$ABASE")"
	if [ "$abase_fast" = "null" ] || [ "$abase_ref" = "null" ] || [ -z "$abase_fast" ]; then
		echo "check_obs_overhead: $ABASE lacks current.BenchmarkPairBounds/BenchmarkPairBoundsReference" >&2
		exit 1
	fi
	go test -run '^$' -bench 'BenchmarkPairBounds$|BenchmarkPairBoundsReference$' \
		-benchtime 10x -count "$COUNT" -benchmem . | tee "$TMP"
	acur_fast="$(awk '$1 ~ /^BenchmarkPairBounds(-[0-9]+)?$/ { ns = $3 + 0; if (best == "" || ns < best) best = ns } END { print best }' "$TMP")"
	acur_ref="$(awk '$1 ~ /^BenchmarkPairBoundsReference(-[0-9]+)?$/ { ns = $3 + 0; if (best == "" || ns < best) best = ns } END { print best }' "$TMP")"
	if [ -z "$acur_fast" ] || [ -z "$acur_ref" ]; then
		echo "check_obs_overhead: analysis benchmarks produced no output" >&2
		exit 1
	fi
	awk -v cs="$acur_fast" -v cr="$acur_ref" -v bs="$abase_fast" -v br="$abase_ref" -v tol="$TOL" 'BEGIN {
		cur = cs / cr
		base = bs / br
		pct = (cur - base) / base * 100
		printf "check_obs_overhead: pairbounds/reference ratio %.4f vs baseline %.4f (%+.2f%%, tolerance %s%%)\n",
			cur, base, pct, tol
		printf "check_obs_overhead: raw %d ns/op vs stored %d ns/op (anchor %d vs %d)\n",
			cs, bs, cr, br
		exit (pct > tol) ? 1 : 0
	}' || { echo "check_obs_overhead: FAIL normalized pair-bounds throughput regressed beyond ${TOL}%" >&2; exit 1; }
fi

echo "check_obs_overhead: OK"
