package disparity_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	disparity "repro"
	"repro/internal/model"
	"repro/internal/sched"
)

const ms = disparity.Millisecond

// buildFusion constructs the camera/LiDAR fusion shape used across the
// public API tests: two stimuli feeding per-sensor processing tasks that
// join at a fusion task.
func buildFusion(t *testing.T) (*disparity.Graph, disparity.TaskID) {
	t.Helper()
	g := disparity.NewGraph()
	ecu := g.AddECU("ecu0", disparity.Compute)
	cam := g.AddTask(disparity.Task{Name: "camera", Period: 33 * ms, ECU: disparity.NoECU})
	lid := g.AddTask(disparity.Task{Name: "lidar", Period: 100 * ms, ECU: disparity.NoECU})
	imgProc := g.AddTask(disparity.Task{Name: "img_proc", WCET: 5 * ms, BCET: 2 * ms, Period: 33 * ms, Prio: 0, ECU: ecu})
	cloudProc := g.AddTask(disparity.Task{Name: "cloud_proc", WCET: 10 * ms, BCET: 4 * ms, Period: 100 * ms, Prio: 1, ECU: ecu})
	fusion := g.AddTask(disparity.Task{Name: "fusion", WCET: 8 * ms, BCET: 3 * ms, Period: 100 * ms, Prio: 2, ECU: ecu})
	for _, e := range [][2]disparity.TaskID{{cam, imgProc}, {lid, cloudProc}, {imgProc, fusion}, {cloudProc, fusion}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, fusion
}

func TestAnalyzeAndDisparity(t *testing.T) {
	g, fusion := buildFusion(t)
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := a.Disparity(fusion, disparity.PDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := a.Disparity(fusion, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Bound <= 0 || sd.Bound <= 0 {
		t.Errorf("bounds = %v / %v, want positive", pd.Bound, sd.Bound)
	}
	if len(pd.Pairs) != 1 {
		t.Errorf("fusion has %d chain pairs, want 1", len(pd.Pairs))
	}
}

func TestAnalyzeRejectsInvalidGraph(t *testing.T) {
	g := disparity.NewGraph()
	g.AddTask(disparity.Task{Name: "bad", Period: 0})
	if _, err := disparity.Analyze(g); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestSimulateAgainstBounds(t *testing.T) {
	g, fusion := buildFusion(t)
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := a.Disparity(fusion, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		disparity.RandomOffsets(g, seed)
		res, err := disparity.Simulate(g, disparity.SimConfig{
			Horizon: 3 * disparity.Second,
			Warmup:  500 * ms,
			Exec:    disparity.ExecExtremes,
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Overruns != 0 {
			t.Errorf("seed %d: %d overruns on a schedulable system", seed, res.Overruns)
		}
		if got := res.MaxDisparity[fusion]; got > sd.Bound {
			t.Errorf("seed %d: simulated disparity %v exceeds S-diff %v", seed, got, sd.Bound)
		}
		if res.Jobs == 0 {
			t.Error("no jobs simulated")
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	g, _ := buildFusion(t)
	if _, err := disparity.Simulate(g, disparity.SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, _, err := disparity.MeasureBackward(g, 0, 1, disparity.SimConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted by MeasureBackward")
	}
}

func TestMeasureBackwardWithinBounds(t *testing.T) {
	g, fusion := buildFusion(t)
	cam, _ := g.TaskByName("camera")
	imgProc, _ := g.TaskByName("img_proc")
	chain := disparity.Chain{cam.ID, imgProc.ID, fusion}
	wcbt, bcbt, err := disparity.BackwardBounds(g, chain)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := disparity.MeasureBackward(g, fusion, cam.ID, disparity.SimConfig{
		Horizon: 3 * disparity.Second,
		Warmup:  500 * ms,
		Exec:    disparity.ExecUniform,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lo < bcbt || hi > wcbt {
		t.Errorf("observed backward [%v, %v] outside analytical [%v, %v]", lo, hi, bcbt, wcbt)
	}
}

func TestMeasureBackwardNoData(t *testing.T) {
	g, fusion := buildFusion(t)
	cam, _ := g.TaskByName("camera")
	// Swapped roles: fusion data never reaches the camera.
	if _, _, err := disparity.MeasureBackward(g, cam.ID, fusion, disparity.SimConfig{
		Horizon: 200 * ms,
	}); err == nil {
		t.Error("expected an error when no data flows")
	}
}

func TestBackwardBoundsValidation(t *testing.T) {
	g, _ := buildFusion(t)
	if _, _, err := disparity.BackwardBounds(g, disparity.Chain{0, 4}); err == nil {
		t.Error("non-path chain accepted")
	}
}

func TestOptimizeViaPublicAPI(t *testing.T) {
	g, la, nu, err := disparity.GenerateTwoChains(4, disparity.GenConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Skip("generated workload unschedulable; generator retries live in the exp harness")
	}
	plan, err := a.Optimize(la, nu)
	if err != nil {
		t.Fatal(err)
	}
	if plan.After > plan.Before {
		t.Errorf("optimization worsened bound: %v -> %v", plan.Before, plan.After)
	}
	buffered := g.Clone()
	if err := plan.Apply(buffered); err != nil {
		t.Fatal(err)
	}
	if buffered.Buffer(plan.Edge.Src, plan.Edge.Dst) != plan.Cap {
		t.Error("plan not applied")
	}
}

func TestGenerators(t *testing.T) {
	g, err := disparity.GenerateGNM(12, 24, disparity.GenConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 12 {
		t.Errorf("tasks = %d", g.NumTasks())
	}

	lg, err := disparity.GenerateLayered([]int{3, 3, 2}, 2, disparity.GenConfig{Seed: 6, ECUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumECUs() != 2 {
		t.Errorf("ECUs = %d, want 2", lg.NumECUs())
	}

	if _, err := disparity.GenerateGNM(1, 1, disparity.GenConfig{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := disparity.GenerateLayered(nil, 1, disparity.GenConfig{}); err == nil {
		t.Error("empty layers accepted")
	}
	if _, _, _, err := disparity.GenerateTwoChains(0, disparity.GenConfig{}); err == nil {
		t.Error("chainLen 0 accepted")
	}
}

func TestGraphJSONRoundTripViaPublicAPI(t *testing.T) {
	g, _ := buildFusion(t)
	var buf strings.Builder
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := disparity.ReadGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != g.NumTasks() {
		t.Error("round trip lost tasks")
	}
}

func TestWCRTAndPriorities(t *testing.T) {
	g, _ := buildFusion(t)
	bounds, ok := disparity.WCRT(g)
	if !ok {
		t.Fatal("fusion fixture should be schedulable")
	}
	if len(bounds) != g.NumTasks() {
		t.Fatalf("bounds for %d tasks, want %d", len(bounds), g.NumTasks())
	}
	imgProc, _ := g.TaskByName("img_proc")
	if bounds[imgProc.ID] < imgProc.WCET {
		t.Error("WCRT below WCET")
	}
	disparity.AssignRateMonotonic(g)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseTime(t *testing.T) {
	d, err := disparity.ParseTime("5ms")
	if err != nil || d != 5*ms {
		t.Errorf("ParseTime = %v, %v", d, err)
	}
}

func TestEnumerateChainsPublic(t *testing.T) {
	g, fusion := buildFusion(t)
	cs, err := disparity.EnumerateChains(g, fusion, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Errorf("chains = %d, want 2", len(cs))
	}
}

func TestEndToEndBounds(t *testing.T) {
	g, fusion := buildFusion(t)
	cam, _ := g.TaskByName("camera")
	imgProc, _ := g.TaskByName("img_proc")
	chain := disparity.Chain{cam.ID, imgProc.ID, fusion}
	e2e, err := disparity.EndToEndBounds(g, chain)
	if err != nil {
		t.Fatal(err)
	}
	if e2e.MinDataAge > e2e.MaxDataAge {
		t.Errorf("age bounds inverted: %+v", e2e)
	}
	if e2e.MaxDataAge > e2e.Davare || e2e.MaxReaction > e2e.Davare {
		t.Errorf("refined bounds above the Davare baseline: %+v", e2e)
	}
	if _, err := disparity.EndToEndBounds(g, disparity.Chain{cam.ID, fusion}); err == nil {
		t.Error("non-path chain accepted")
	}
}

func TestOptimizeOffsetsPublic(t *testing.T) {
	g, fusion := buildFusion(t)
	// All-LET version for exact evaluation.
	for i := 0; i < g.NumTasks(); i++ {
		g.Task(disparity.TaskID(i)).Sem = disparity.LET
	}
	g.Task(0).Offset = 13 * ms
	res, err := disparity.OptimizeOffsets(g, fusion, disparity.OffsetOptConfig{Steps: 4, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.After > res.Before {
		t.Errorf("offset optimization regressed: %v -> %v", res.Before, res.After)
	}
	if len(res.Offsets) != g.NumTasks() {
		t.Errorf("offsets for %d tasks, want %d", len(res.Offsets), g.NumTasks())
	}
}

func TestLETViaPublicAPI(t *testing.T) {
	g, fusion := buildFusion(t)
	for i := 0; i < g.NumTasks(); i++ {
		g.Task(disparity.TaskID(i)).Sem = disparity.LET
	}
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	td, err := a.Disparity(fusion, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := disparity.Simulate(g, disparity.SimConfig{Horizon: 2 * disparity.Second, Warmup: disparity.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxDisparity[fusion]; got > td.Bound {
		t.Errorf("LET sim %v above bound %v", got, td.Bound)
	}
	// Mixed semantics rejected.
	g.Task(fusion).Sem = disparity.Implicit
	if _, err := disparity.Analyze(g); err == nil {
		t.Error("mixed-semantics graph accepted")
	}
}

func TestCANBusViaPublicAPI(t *testing.T) {
	bus := disparity.CANBus{Rate: disparity.Baud1M, Format: disparity.CANExtended, Payload: 4}
	best, worst := bus.FrameTimes()
	if best <= 0 || worst < best {
		t.Errorf("frame times incoherent: %v / %v", best, worst)
	}
}

// Guard: the exported aliases must reference the same types as the
// internal packages (compile-time check by assignment).
var _ disparity.TaskID = model.TaskID(0)

func TestExactLETDisparityPublic(t *testing.T) {
	g, fusion := buildFusion(t)
	for i := 0; i < g.NumTasks(); i++ {
		g.Task(disparity.TaskID(i)).Sem = disparity.LET
	}
	exact, err := disparity.ExactLETDisparity(g, fusion)
	if err != nil {
		t.Fatal(err)
	}
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	td, err := a.Disparity(fusion, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact > td.Bound {
		t.Errorf("exact %v above the offset-oblivious bound %v", exact, td.Bound)
	}
	// Non-LET graphs rejected.
	imp, f2 := buildFusion(t)
	if _, err := disparity.ExactLETDisparity(imp, f2); err == nil {
		t.Error("implicit graph accepted")
	}
}

func TestGenerateAutomotive(t *testing.T) {
	g, fusion, err := disparity.GenerateAutomotive(disparity.AutomotiveConfig{}, disparity.GenConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Predecessors(fusion)) != 3 {
		t.Errorf("fusion inputs = %d, want 3", len(g.Predecessors(fusion)))
	}
	if _, _, err := disparity.GenerateAutomotive(disparity.AutomotiveConfig{Sensors: 1, ProcDepth: 1}, disparity.GenConfig{}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestGenerateFleet(t *testing.T) {
	cfg := disparity.FleetConfig{Zones: 2, ECUsPerZone: 2, PipesPerECU: 3, ProcDepth: 2, TailLen: 1}
	g, fusion, err := disparity.GenerateFleet(cfg, disparity.GenConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tasks = topology + one bus message per cross-ECU edge: an
	// aggregator→gateway hop for each non-gateway ECU plus every
	// gateway→fusion hop.
	msgs := cfg.Zones*(cfg.ECUsPerZone-1) + cfg.Zones
	if got, want := g.NumTasks(), cfg.NumTasks()+msgs; got != want {
		t.Errorf("NumTasks = %d, want %d (+%d bus messages)", got, want, msgs)
	}
	// Budgeted WCETs make the graph schedulable by construction.
	if res := sched.Analyze(g, sched.NonPreemptiveFP); !res.Schedulable {
		t.Errorf("budget-populated fleet graph not NP-FP schedulable: %+v", res)
	}
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	td, err := a.DisparityBound(fusion, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	nc := cfg.NumChains()
	if want := nc * (nc - 1) / 2; td.NumPairs != want {
		t.Errorf("NumPairs = %d, want %d (%d pipelines)", td.NumPairs, want, nc)
	}
	if td.Bound <= 0 {
		t.Errorf("fleet disparity bound = %v, want > 0", td.Bound)
	}
	if _, _, err := disparity.GenerateFleet(disparity.FleetConfig{Zones: 1}, disparity.GenConfig{}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestGenerateFleetDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-task generation in -short mode")
	}
	g, fusion, err := disparity.GenerateFleet(disparity.FleetConfig{}, disparity.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() < 2000 {
		t.Errorf("default fleet has %d tasks, want ≥ 2000", g.NumTasks())
	}
	if res := sched.Analyze(g, sched.NonPreemptiveFP); !res.Schedulable {
		t.Error("default fleet graph not NP-FP schedulable")
	}
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	td, err := a.DisparityBound(fusion, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if td.Truncated || td.Bound <= 0 {
		t.Errorf("default fleet: bound %v truncated=%v", td.Bound, td.Truncated)
	}
}

func TestThresholdAndTopologicalPublic(t *testing.T) {
	g, fusion := buildFusion(t)
	if err := disparity.AssignTopological(g); err != nil {
		t.Fatal(err)
	}
	a, err := disparity.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.CheckThreshold(fusion, disparity.Second, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("1s threshold should hold: %+v", rep)
	}
	rep2, err := a.CheckThreshold(fusion, disparity.Millisecond, disparity.SDiff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK || len(rep2.Violations) == 0 {
		t.Errorf("1ms threshold should be violated with details: %+v", rep2)
	}
}

// TestShippedSampleGraphs guards the JSON format: the graphs shipped
// under examples/graphs must keep loading and analyzing.
func TestShippedSampleGraphs(t *testing.T) {
	for _, name := range []string{"automotive.json", "gnm15.json", "twochains.json"} {
		f, err := os.Open(filepath.Join("examples", "graphs", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := disparity.ReadGraph(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := disparity.Analyze(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sinks := g.Sinks()
		if len(sinks) != 1 {
			t.Fatalf("%s: %d sinks", name, len(sinks))
		}
		if _, err := a.Disparity(sinks[0], disparity.SDiff, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
