# Verification tiers. `make check` is the full recipe CI should run.
#
#   build  - compile everything
#   test   - tier 1: the plain test suite
#   race   - tier 2: vet + the suite (incl. the differential harness
#            in internal/integration) under the race detector
#   bench  - compile-and-smoke every benchmark (one iteration each)
#   check  - all of the above

GO ?= go

.PHONY: build test race bench check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

check: build test race bench
