# Verification tiers. `make check` is the full recipe CI should run.
#
#   build       - compile everything
#   test        - tier 1: the plain test suite
#   race        - tier 2: vet + the suite (incl. the differential harness
#                 in internal/integration) under the race detector
#   bench       - compile-and-smoke every benchmark (one iteration each)
#   bench-smoke - quick perf tier: the simulator benchmarks (a few real
#                 iterations, -benchmem) + vet of internal/sim, so a
#                 regression in the pooled hot path is caught without
#                 running the full bench suite
#   bench-json  - run the headline benchmarks and refresh BENCH_sim.json
#                 (see tools/bench_json.sh; numbers are machine-relative,
#                 regenerate before/after on the same box)
#   check       - build + test + race + bench
#
# tools/escape_check.sh (not wired into check; advisory) prints sim hot-path
# values that escape to the heap per `go build -gcflags=-m`.

GO ?= go

.PHONY: build test race bench bench-smoke bench-json check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

bench-smoke:
	$(GO) vet ./internal/sim/...
	$(GO) test -run='^$$' -bench='BenchmarkSimThroughput|BenchmarkPooledEngine|BenchmarkReferenceEngine' -benchtime=3x -benchmem ./...

bench-json:
	sh tools/bench_json.sh

check: build test race bench
