# Verification tiers. `make check` is the full recipe CI should run.
#
#   build       - compile everything
#   test        - tier 1: the plain test suite
#   race        - tier 2: vet + the suite (incl. the differential harness
#                 in internal/integration) under the race detector
#   bench       - compile-and-smoke every benchmark (one iteration each)
#   bench-smoke - quick perf tier: the simulator and analysis benchmarks
#                 (a few real iterations, -benchmem) + vet of
#                 internal/sim, so a regression in the pooled sim hot
#                 path or the trie analysis fast path is caught without
#                 running the full bench suite
#   bench-json  - run the headline benchmarks and refresh BENCH_sim.json
#                 and BENCH_analysis.json (see tools/bench_json.sh and
#                 tools/bench_analysis_json.sh; numbers are machine-
#                 relative, regenerate before/after on the same box)
#   verify-obs  - observability tier: vet + race tests of the
#                 instrumentation packages (metrics, trace, telemetry,
#                 par, sim, exp), the steady-state alloc regression
#                 test, and tools/check_obs_overhead.sh's <2% disabled-
#                 tracing throughput guard against BENCH_sim.json
#   verify-latency - latency metric suite tier: the 200-workload
#                 analysis-vs-simulation differential harness and the
#                 observer property harness under -race, the trie
#                 fast-path unit differentials, the latency observer
#                 and method tests, and the chains fuzz seed corpus
#   verify-sim-cycle - steady-state jump-ahead tier: the cycle-detection
#                 and batch unit tests plus the public-API jump on/off
#                 determinism test under -race, and the 200-workload
#                 jump-vs-full differential harness
#   verify-explain - decision-telemetry tier: vet + race tests of the
#                 explain recorder/witness, the derived telemetry
#                 gauges, the shared CLI -explain lifecycle, the bench
#                 gate tool, and the pinned WATERS -explain golden
#   verify-scale - fleet-scale tier: vet + race tests of the bitset,
#                 chains, and fleet generator packages, the >64-task
#                 differential harness (100 fleet-tier workloads fast
#                 path == reference, exact multi-word masks on the
#                 1000+-task default fleet, subtree pruning on == off
#                 field by field plus the subtree-aggregate property
#                 test — every TestScale* in internal/integration rides
#                 the -run pattern), the public GenerateFleet tests,
#                 and the pinned fleet generator golden
#   bench-gate  - regenerate both bench JSONs into .bench/ and diff
#                 them against the checked-in baselines with
#                 tools/bench_compare (BENCH_GATE_FLAGS=-report-only
#                 for advisory mode); fails on ratio/alloc regression
#   check       - build + test + race + bench
#
# tools/escape_check.sh (not wired into check; advisory) prints sim hot-path
# values that escape to the heap per `go build -gcflags=-m`.

GO ?= go

.PHONY: build test race bench bench-smoke bench-json verify-obs verify-latency verify-sim-cycle verify-explain verify-scale bench-gate check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

bench-smoke:
	$(GO) vet ./internal/sim/...
	$(GO) test -run='^$$' -bench='BenchmarkSimThroughput|BenchmarkPooledEngine|BenchmarkReferenceEngine|BenchmarkPairBounds|BenchmarkSimJumpAhead|BenchmarkBatchSweep' -benchtime=3x -benchmem ./...

bench-json:
	sh tools/bench_json.sh
	sh tools/bench_analysis_json.sh

verify-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/metrics/... ./internal/trace/... ./internal/telemetry/... ./internal/par/... ./internal/sim/...
	$(GO) test -race -run 'TestSweepObservability|TestUntracedSweepIdentical' ./internal/exp/...
	$(GO) test -run 'TestSteadyStateAllocsPerJob' ./internal/sim/...
	sh tools/check_obs_overhead.sh

verify-sim-cycle:
	$(GO) vet ./internal/sim/...
	$(GO) test -race -run 'TestJumpAhead|TestBatch' ./internal/sim/...
	$(GO) test -race -run 'TestSimulateJumpAheadDeterministic' .
	$(GO) test -run 'TestJumpAheadMatchesFullExecution' ./internal/integration/...

verify-explain:
	$(GO) vet ./internal/explain/... ./tools/bench_compare/...
	$(GO) test -race ./internal/explain/... ./internal/telemetry/... ./internal/cli/... ./tools/bench_compare/...
	$(GO) test -run 'TestGoldenExplainWaters' ./cmd/disparity-analyze/...
	$(GO) test -run 'TestReportExplainSection' ./internal/report/...

verify-scale:
	$(GO) vet ./internal/bitset/... ./internal/chains/... ./internal/randgraph/... ./internal/waters/...
	$(GO) test -race ./internal/bitset/... ./internal/chains/... ./internal/randgraph/... ./internal/waters/...
	$(GO) test -race -run 'TestScale' ./internal/integration/...
	$(GO) test -run 'TestGenerateFleet' .
	$(GO) test -run 'TestGoldenGenTopologies/fleet' ./cmd/disparity-gen/...

bench-gate:
	mkdir -p .bench
	BENCH_OUT_DIR=.bench sh tools/bench_json.sh
	BENCH_OUT_DIR=.bench sh tools/bench_analysis_json.sh
	$(GO) run ./tools/bench_compare $(BENCH_GATE_FLAGS) BENCH_sim.json .bench/BENCH_sim.json BENCH_analysis.json .bench/BENCH_analysis.json

verify-latency:
	$(GO) test -race -run 'TestLatency' ./internal/integration/...
	$(GO) test -run 'TestChainLatency' ./internal/backward/...
	$(GO) test -run 'TestLatency' ./internal/core/... ./internal/sim/... ./internal/methods/...
	$(GO) test -run 'TestLatencySweep' ./internal/exp/...
	$(GO) test -run 'FuzzIndexMatchesEnumerate' ./internal/chains/...

check: build test race bench
